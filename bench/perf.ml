(* Packet-rate benchmark: the dataplane fast-path gate.

   Drives a many-switch ECMP fat-tree with TPP-tagged UDP flows and
   reports end-to-end event and packet throughput of the simulator
   itself (wall-clock, not simulated time). Writes a machine-readable
   BENCH_<n>.json so successive PRs have a trajectory to beat.

     dune exec bench/perf.exe                 sequential engine -> BENCH_1.json
     dune exec bench/perf.exe -- --shards 4   parallel (tpp_parsim) -> BENCH_2.json
     dune exec bench/perf.exe -- --k 4        smaller fabric
     dune exec bench/perf.exe -- --smoke      quick CI check: sequential and
                                              2-shard runs must agree exactly
     dune exec bench/perf.exe -- --tpp-heavy  TCPU compilation gate: interpreter
                                              vs compiled backend -> BENCH_3.json
     dune exec bench/perf.exe -- --tpp-heavy --smoke
                                              quick CI check: compiled backend
                                              (sequential and 2-shard) must match
                                              the interpreter exactly
     dune exec bench/perf.exe -- --chaos      fault-injection gate: an attached
                                              empty schedule must be free, and a
                                              chaotic run must be bit-identical
                                              sequential vs sharded -> BENCH_4.json
     dune exec bench/perf.exe -- --chaos --smoke
                                              quick CI variant of the same gate
     dune exec bench/perf.exe -- --out b.json custom output path
*)

open Tpp

let collect_program =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Link:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n\
   PUSH [Link:Drops]\n"

type config = {
  k : int;                    (* fat-tree arity *)
  packets_per_host : int;
  payload_bytes : int;
  gap_ns : int;               (* inter-departure time per host *)
  wire_check : Net.wire_check;
  shards : int;               (* 0 = plain sequential engine *)
  smoke : bool;
  tpp_heavy : bool;           (* BENCH_3: TCPU backend comparison *)
  chaos : bool;               (* BENCH_4: fault-injection gate *)
  out : string option;
}

let default =
  { k = 8; packets_per_host = 1500; payload_bytes = 1000; gap_ns = 6_000;
    wire_check = `Cached; shards = 0; smoke = false; tpp_heavy = false;
    chaos = false; out = None }

let horizon = Time_ns.sec 10

let build cfg eng =
  let ft =
    Topology.fat_tree eng ~wire_check:cfg.wire_check ~ecmp:true ~k:cfg.k
      ~bps:10_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* Identical traffic whether the net is the whole fabric or one shard:
   each host streams to a partner in the opposite half, so flows cross
   edge, aggregation and core layers and exercise ECMP. *)
let setup_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp_template = Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program) in
  let payload = Bytes.create cfg.payload_bytes in
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7
        ~tpp:(Prog.copy tpp_template) ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id then
      for j = 0 to cfg.packets_per_host - 1 do
        (* Offset hosts against each other so departures are not all
           simultaneous (keeps the event heap realistically mixed). *)
        let t = (j * cfg.gap_ns) + (src * 7) + 1 in
        Engine.at eng t (fun () -> send src)
      done
  done

type outcome = {
  events : int;
  delivered : int;
  wall : float;
  rounds : int;       (* parallel only *)
  messages : int;     (* frames that crossed a shard boundary *)
  cut_links : int;
  lookahead_ns : int;
}

let run_sequential cfg =
  let eng = Engine.create () in
  let net = build cfg eng in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  { events = Engine.events_processed eng; delivered = Net.frames_delivered net;
    wall; rounds = 0; messages = 0; cut_links = 0; lookahead_ns = 0 }

(* Wall time includes partitioning and per-shard topology construction —
   the price of entry a real parallel run pays. *)
let run_parallel cfg ~shards =
  let t0 = Unix.gettimeofday () in
  let stats, _ =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard:_ ~owns net -> setup_traffic cfg ~owns net)
      ~collect:(fun ~shard:_ ~owns:_ _ -> ())
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  { events = stats.Parsim.events; delivered = stats.Parsim.delivered; wall;
    rounds = stats.Parsim.rounds; messages = stats.Parsim.messages;
    cut_links = stats.Parsim.cut_links;
    lookahead_ns = stats.Parsim.lookahead }

(* ---- TPP-heavy workload (BENCH_3): the TCPU compilation gate -------

   Long per-hop programs make the TCPU the dominant per-event cost, so
   the interpreter-vs-compiled instruction throughput is visible above
   the simulator's fixed overheads. The same workload runs under both
   backends (and sharded), and every architectural observable — events,
   deliveries, faults, execs, cycles, switch registers, SRAM — must be
   bit-identical. *)

let heavy_block =
  "LOAD [Switch:PacketsSeen], [Packet:0]\n\
   LOAD [Link:QueueSize], [Packet:4]\n\
   ADD [Packet:0], [Packet:4]\n\
   LOAD [Link:TxBytes], [Packet:8]\n\
   MAX [Packet:8], [Packet:0]\n\
   AND [Packet:0], 0xFFF\n\
   OR [Packet:4], 7\n\
   SUB [Packet:8], [Packet:4]\n\
   ADD [Packet:12], 1\n\
   MIN [Packet:12], 0xFFF\n\
   MOV [Packet:16], [Packet:8]\n\
   ADD [Packet:16], [Packet:0]\n"

let heavy_program =
  (* mask 0 always passes: the CEXEC is here to keep the pool machinery
     on the hot path, not to filter. 8 blocks = 99 instructions, still
     inside the 300-cycle budget (4 + 99 cycles). *)
  "CEXEC [Switch:Version], 0, 0\n"
  ^ String.concat "" (List.init 8 (fun _ -> heavy_block))
  ^ "ADD [Sram:7], 1\n\
     MAX [Sram:8], [Link:QueueSize]\n"

(* Every 16th packet of each host carries this instead: the STORE to a
   read-only register faults at the first hop, exercising the faulted-
   TPP inert path and fault accounting under both backends. *)
let heavy_fault_program =
  "ADD [Sram:9], 1\n\
   STORE [Switch:SwitchID], 1\n\
   ADD [Sram:9], 1\n"

let setup_heavy_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp_template = Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_program) in
  let fault_template = Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_fault_program) in
  let payload = Bytes.create cfg.payload_bytes in
  let send src faulty =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let tpp = Prog.copy (if faulty then fault_template else tpp_template) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7 ~tpp ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id then
      for j = 0 to cfg.packets_per_host - 1 do
        let t = (j * cfg.gap_ns) + (src * 7) + 1 in
        (* The faulting-packet choice depends only on (src, j), so the
           set is identical whatever the shard layout. *)
        Engine.at eng t (fun () -> send src (j mod 16 = 0))
      done
  done

(* Per-switch register fingerprint, same shape as test_parsim's. The
   compile hit/miss counters are deliberately excluded: each shard links
   its own template family, so the hit/miss split — unlike every
   architectural register — legitimately varies with the shard count. *)
module SS = Switch_state

let sram_hash (st : SS.t) =
  Array.fold_left (fun acc w -> (acc * 1_000_003) + w) 0 st.SS.sram

let port_fp (p : SS.Port.t) =
  [
    p.SS.Port.rx_bytes; p.rx_pkts; p.tx_bytes; p.tx_pkts; p.drops;
    p.offered_bytes; p.queue_bytes;
  ]

let switch_fp id sw =
  let st = Switch.state sw in
  ( id,
    [
      st.SS.packets_seen; st.SS.bytes_seen; st.SS.drops; st.SS.tpp_execs;
      st.SS.tpp_faults; st.SS.tpp_cycles; sram_hash st;
    ]
    @ List.concat_map port_fp (Array.to_list st.SS.ports) )

let net_fp ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.map (fun (id, sw) -> switch_fp id sw)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type tpp_totals = {
  t_execs : int;
  t_faults : int;
  t_cycles : int;
  t_hits : int;    (* per-switch compile-cache hits, observability only *)
  t_misses : int;
}

let tpp_zero = { t_execs = 0; t_faults = 0; t_cycles = 0; t_hits = 0; t_misses = 0 }

let tpp_add a b =
  {
    t_execs = a.t_execs + b.t_execs;
    t_faults = a.t_faults + b.t_faults;
    t_cycles = a.t_cycles + b.t_cycles;
    t_hits = a.t_hits + b.t_hits;
    t_misses = a.t_misses + b.t_misses;
  }

let tpp_totals_of ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.fold_left
       (fun acc (_, sw) ->
         let st = Switch.state sw in
         tpp_add acc
           {
             t_execs = st.SS.tpp_execs;
             t_faults = st.SS.tpp_faults;
             t_cycles = st.SS.tpp_cycles;
             t_hits = st.SS.tpp_compile_hits;
             t_misses = st.SS.tpp_compile_misses;
           })
       tpp_zero

(* Instructions actually executed: every exec costs 4 fill cycles plus
   one cycle per instruction, so the instruction count falls out of the
   two counters the ASIC already keeps. *)
let instrs_of t = t.t_cycles - (4 * t.t_execs)

type heavy_run = {
  h_events : int;
  h_delivered : int;
  h_wall : float;
  h_totals : tpp_totals;
  h_fp : (int * int list) list;
}

let run_heavy_sequential cfg ~backend =
  Tcpu.set_default_backend backend;
  let eng = Engine.create () in
  let net = build cfg eng in
  setup_heavy_traffic cfg ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  Tcpu.set_default_backend Tcpu.Compiled;
  {
    h_events = Engine.events_processed eng;
    h_delivered = Net.frames_delivered net;
    h_wall = wall;
    h_totals = tpp_totals_of ~owns:(fun _ -> true) net;
    h_fp = net_fp ~owns:(fun _ -> true) net;
  }

let run_heavy_parallel cfg ~shards =
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard:_ ~owns net -> setup_heavy_traffic cfg ~owns net)
      ~collect:(fun ~shard:_ ~owns net ->
        (tpp_totals_of ~owns net, net_fp ~owns net))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let totals = Array.fold_left (fun acc (t, _) -> tpp_add acc t) tpp_zero parts in
  let fp =
    Array.to_list parts
    |> List.concat_map snd
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    h_events = stats.Parsim.events;
    h_delivered = stats.Parsim.delivered;
    h_wall = wall;
    h_totals = totals;
    h_fp = fp;
  }

(* Everything architectural must match; wall time and compile counters
   may differ. Exits non-zero on divergence: a fast wrong TCPU is not a
   result. *)
let check_heavy_identity ~label (ref_ : heavy_run) (got : heavy_run) =
  let fail what a b =
    Printf.eprintf "perf(tpp-heavy): FAIL — %s: %s differs (%d vs %d)\n" label
      what a b;
    exit 1
  in
  if ref_.h_events <> got.h_events then fail "events" ref_.h_events got.h_events;
  if ref_.h_delivered <> got.h_delivered then
    fail "delivered" ref_.h_delivered got.h_delivered;
  if ref_.h_totals.t_execs <> got.h_totals.t_execs then
    fail "tpp_execs" ref_.h_totals.t_execs got.h_totals.t_execs;
  if ref_.h_totals.t_faults <> got.h_totals.t_faults then
    fail "tpp_faults" ref_.h_totals.t_faults got.h_totals.t_faults;
  if ref_.h_totals.t_cycles <> got.h_totals.t_cycles then
    fail "tpp_cycles" ref_.h_totals.t_cycles got.h_totals.t_cycles;
  if ref_.h_fp <> got.h_fp then begin
    Printf.eprintf
      "perf(tpp-heavy): FAIL — %s: switch register fingerprints differ\n" label;
    exit 1
  end

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let wire_check_name = function
  | `Always -> "always"
  | `Cached -> "cached"
  | `Off -> "off"

let workload_of cfg =
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d TPP-tagged UDP packets, %dB \
     payload, wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let heavy_workload_of cfg =
  let program_len =
    Array.length
      (Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_program)).Prog.program
  in
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d UDP packets, %d-instr TPP per hop \
     (1 in 16 packets faulting), %dB payload, wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host program_len cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let write_heavy_json cfg ~out ~interp ~comp ~par ~shards ~speedup
    ~(cache : Tcpu_compile.cache_stats) =
  let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
  let instrs = instrs_of comp.h_totals in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 3,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"tpp_execs\": %d,\n\
    \  \"tpp_faults\": %d,\n\
    \  \"tpp_instrs\": %d,\n\
    \  \"interpreter_wall_s\": %.6f,\n\
    \  \"interpreter_instrs_per_sec\": %.1f,\n\
    \  \"compiled_wall_s\": %.6f,\n\
    \  \"compiled_instrs_per_sec\": %.1f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"identical_to_interpreter\": true,\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": true },\n\
    \  \"cache\": { \"programs\": %d, \"hits\": %d, \"misses\": %d }\n\
     }\n"
    (heavy_workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    comp.h_events sent comp.h_delivered comp.h_totals.t_execs
    comp.h_totals.t_faults instrs interp.h_wall
    (float_of_int instrs /. interp.h_wall)
    comp.h_wall
    (float_of_int instrs /. comp.h_wall)
    speedup shards par.h_wall cache.Tcpu_compile.programs
    cache.Tcpu_compile.hits cache.Tcpu_compile.misses;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* The BENCH_3 gate: same heavy workload under the interpreter, the
   compiled backend, and a sharded compiled run. Identity is mandatory;
   the >= 2x instruction-throughput target is reported (and written to
   the JSON) but only warned about, like BENCH_2's core-count caveat. *)
let tpp_heavy cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 150 } else cfg
  in
  let tag = if cfg.smoke then "perf(tpp-heavy smoke)" else "perf(tpp-heavy)" in
  Printf.printf "%s: %s\n%!" tag (heavy_workload_of cfg);
  Tcpu_compile.clear_cache ();
  let interp = run_heavy_sequential cfg ~backend:Tcpu.Interpreter in
  Tcpu_compile.clear_cache ();
  let comp = run_heavy_sequential cfg ~backend:Tcpu.Compiled in
  let cache = Tcpu_compile.cache_stats () in
  check_heavy_identity ~label:"compiled vs interpreter" interp comp;
  let shards = if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4 in
  let par = run_heavy_parallel cfg ~shards in
  check_heavy_identity
    ~label:(Printf.sprintf "%d-shard compiled vs interpreter" shards)
    interp par;
  let instrs = instrs_of comp.h_totals in
  let speedup = interp.h_wall /. comp.h_wall in
  Printf.printf
    "%s: %d events, %d delivered, %d TPP execs (%d faulted), %d instructions\n\
     %s: interpreter %.3fs (%.3e instrs/sec)\n\
     %s: compiled    %.3fs (%.3e instrs/sec)  speedup %.2fx\n\
     %s: %d-shard compiled %.3fs — identical registers\n\
     %s: cache %d program(s), %d hits / %d misses; per-switch linked \
     hits %d / misses %d\n%!"
    tag comp.h_events comp.h_delivered comp.h_totals.t_execs
    comp.h_totals.t_faults instrs tag interp.h_wall
    (float_of_int instrs /. interp.h_wall)
    tag comp.h_wall
    (float_of_int instrs /. comp.h_wall)
    speedup tag shards par.h_wall tag cache.Tcpu_compile.programs
    cache.Tcpu_compile.hits cache.Tcpu_compile.misses comp.h_totals.t_hits
    comp.h_totals.t_misses;
  Printf.printf
    "%s: OK — compiled backend matches the interpreter bit-for-bit\n%!" tag;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_3.json" in
    write_heavy_json cfg ~out ~interp ~comp ~par ~shards ~speedup ~cache;
    if speedup < 2.0 then
      Printf.printf
        "%s: WARNING — speedup %.2fx below the 2x target on this machine\n%!"
        tag speedup
  end

let write_json cfg ~out r =
  let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": %d,\n\
    \  \"workload\": \"%s\",\n\
    \  \"shards\": %d,\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"boundary_messages\": %d,\n\
    \  \"cut_links\": %d,\n\
    \  \"lookahead_ns\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"packets_per_sec\": %.1f\n\
     }\n"
    (if cfg.shards > 0 then 2 else 1)
    (workload_of cfg) cfg.shards (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    r.events sent r.delivered r.rounds r.messages r.cut_links r.lookahead_ns
    r.wall
    (float_of_int r.events /. r.wall)
    (float_of_int r.delivered /. r.wall);
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* A fast cross-check for CI: the sequential engine and a 2-shard
   parallel run of a small fabric must agree on every count. *)
let smoke cfg =
  let cfg = { cfg with k = 4; packets_per_host = 200 } in
  Printf.printf "perf(smoke): %s\n%!" (workload_of cfg);
  let s = run_sequential cfg in
  let p = run_parallel cfg ~shards:2 in
  Printf.printf
    "perf(smoke): sequential %d events / %d delivered (%.3fs), 2-shard %d \
     events / %d delivered (%.3fs, %d rounds)\n%!"
    s.events s.delivered s.wall p.events p.delivered p.wall p.rounds;
  if s.events <> p.events || s.delivered <> p.delivered then begin
    Printf.eprintf "perf(smoke): FAIL — parallel run diverged from sequential\n";
    exit 1
  end;
  Printf.printf "perf(smoke): OK — parallel run identical to sequential\n%!"

(* ---- chaos workload (BENCH_4): the fault-injection gate ------------

   Two properties the Fault subsystem must never lose:

   1. Zero cost when unattached. The dataplane consults the fault hooks
      only when a schedule is installed, and an installed-but-empty
      schedule must not change a single count (and must cost next to
      nothing in wall time).

   2. Determinism under sharding. A chaotic schedule — flap, loss,
      corruption, freeze-restart, degradation all at once — must yield
      bit-identical event/delivery/fault counts whether the run is
      sequential or sharded.

   The faulted cables are host access links plus the edge switch above
   host 1: these carry traffic by construction, where an arbitrary core
   uplink may be starved by ECMP hashing. Fault windows scale with the
   send span so every rule fires at any --packets setting. *)

let chaos_seed = 4242

let chaos_schedule cfg net =
  let span = cfg.packets_per_host * cfg.gap_ns in
  let f = Fault.create ~seed:chaos_seed in
  let hosts = Array.of_list (Net.hosts net) in
  let access i = (hosts.(i).Net.node_id, 0) in
  let edge_above i =
    match Net.neighbors net hosts.(i).Net.node_id with
    | (_, peer, _) :: _ -> peer
    | [] -> invalid_arg "chaos_schedule: host has no uplink"
  in
  let period = max 2 (span / 25) in
  Fault.flap f ~from_:(span / 10) ~until_:(span * 4 / 5) ~period
    ~down_for:(max 1 (period * 2 / 5)) (access 0);
  Fault.lossy f ~from_:0 ~until_:span ~drop:0.2 ~corrupt:0.05 (access 5);
  Fault.freeze f ~from_:(span / 5) ~until_:(span * 2 / 5) (edge_above 1);
  Fault.degrade f ~from_:(span / 3) ~until_:(span * 9 / 10) ~rate_factor:0.5
    ~extra_delay:(Time_ns.us 2) (access 9);
  Fault.attach f net;
  f

let fault_fp (s : Fault.stats) =
  [
    s.Fault.lost_down; s.Fault.dropped; s.Fault.corrupt_header;
    s.Fault.corrupt_fcs; s.Fault.frozen_arrivals; s.Fault.restarts;
  ]

let fault_fp_add = List.map2 ( + )

(* Sequential run with an arbitrary fault setup applied post-build. *)
let run_sequential_faulted cfg ~fault =
  let eng = Engine.create () in
  let net = build cfg eng in
  let f = fault net in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  ( { events = Engine.events_processed eng;
      delivered = Net.frames_delivered net; wall; rounds = 0; messages = 0;
      cut_links = 0; lookahead_ns = 0 },
    f )

let run_parallel_chaos cfg ~shards =
  let faults = Array.make shards None in
  let t0 = Unix.gettimeofday () in
  let stats, per_shard =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard ~owns net ->
        faults.(shard) <- Some (chaos_schedule cfg net);
        setup_traffic cfg ~owns net)
      ~collect:(fun ~shard ~owns:_ _ ->
        fault_fp (Fault.stats (Option.get faults.(shard))))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let fp =
    Array.fold_left fault_fp_add [ 0; 0; 0; 0; 0; 0 ] per_shard
  in
  ( { events = stats.Parsim.events; delivered = stats.Parsim.delivered; wall;
      rounds = stats.Parsim.rounds; messages = stats.Parsim.messages;
      cut_links = stats.Parsim.cut_links; lookahead_ns = stats.Parsim.lookahead },
    fp )

let write_chaos_json cfg ~out ~base ~empty ~(chaotic : outcome)
    ~(stats : Fault.stats) ~shards ~par_wall =
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 4,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"baseline_wall_s\": %.6f,\n\
    \  \"empty_schedule_wall_s\": %.6f,\n\
    \  \"empty_schedule_overhead\": %.4f,\n\
    \  \"chaos_events\": %d,\n\
    \  \"chaos_delivered\": %d,\n\
    \  \"chaos_wall_s\": %.6f,\n\
    \  \"chaos_events_per_sec\": %.1f,\n\
    \  \"faults\": { \"lost_down\": %d, \"dropped\": %d, \"corrupt_header\": \
     %d, \"corrupt_fcs\": %d, \"frozen_arrivals\": %d, \"restarts\": %d },\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": true }\n\
     }\n"
    (workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    base.wall empty.wall (empty.wall /. base.wall) chaotic.events
    chaotic.delivered chaotic.wall
    (float_of_int chaotic.events /. chaotic.wall)
    stats.Fault.lost_down stats.Fault.dropped stats.Fault.corrupt_header
    stats.Fault.corrupt_fcs stats.Fault.frozen_arrivals stats.Fault.restarts
    shards par_wall;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

let chaos cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 200 } else cfg
  in
  let tag = if cfg.smoke then "perf(chaos smoke)" else "perf(chaos)" in
  Printf.printf "%s: %s\n%!" tag (workload_of cfg);
  (* 1. Zero cost when unattached: an empty schedule changes nothing.
     Best of two runs each, so a scheduler hiccup on a short smoke run
     cannot fake a regression. *)
  let best_of_two run =
    let a = run () in
    let b = run () in
    if b.wall < a.wall then b else a
  in
  let base = best_of_two (fun () -> run_sequential cfg) in
  let empty =
    best_of_two (fun () ->
        fst
          (run_sequential_faulted cfg ~fault:(fun net ->
               let f = Fault.create ~seed:1 in
               Fault.attach f net;
               f)))
  in
  if base.events <> empty.events || base.delivered <> empty.delivered then begin
    Printf.eprintf
      "%s: FAIL — empty fault schedule changed counts (%d/%d events, %d/%d \
       delivered)\n"
      tag base.events empty.events base.delivered empty.delivered;
    exit 1
  end;
  let overhead = empty.wall /. base.wall in
  Printf.printf
    "%s: baseline %.3fs, empty schedule attached %.3fs (%.2fx)\n%!" tag
    base.wall empty.wall overhead;
  if overhead > 1.5 then begin
    Printf.eprintf
      "%s: FAIL — empty fault schedule costs %.2fx (budget 1.5x)\n" tag
      overhead;
    exit 1
  end;
  (* 2. Determinism under sharding: full chaos, sequential vs sharded. *)
  let chaotic, f = run_sequential_faulted cfg ~fault:(chaos_schedule cfg) in
  let stats = Fault.stats f in
  Printf.printf
    "%s: chaotic run %d events, %d delivered in %.3fs\n\
     %s: lost_down=%d dropped=%d corrupt=%d+%d frozen=%d restarts=%d\n%!"
    tag chaotic.events chaotic.delivered chaotic.wall tag
    stats.Fault.lost_down stats.Fault.dropped stats.Fault.corrupt_header
    stats.Fault.corrupt_fcs stats.Fault.frozen_arrivals stats.Fault.restarts;
  if
    stats.Fault.lost_down = 0 || stats.Fault.dropped = 0
    || stats.Fault.corrupt_header + stats.Fault.corrupt_fcs = 0
    || stats.Fault.frozen_arrivals = 0 || stats.Fault.restarts <> 1
  then begin
    Printf.eprintf "%s: FAIL — some fault class never fired\n" tag;
    exit 1
  end;
  let shards = if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4 in
  let par, par_fp = run_parallel_chaos cfg ~shards in
  if
    chaotic.events <> par.events
    || chaotic.delivered <> par.delivered
    || fault_fp stats <> par_fp
  then begin
    Printf.eprintf
      "%s: FAIL — %d-shard chaotic run diverged from sequential\n" tag shards;
    exit 1
  end;
  Printf.printf
    "%s: OK — empty schedule free, %d-shard chaos identical to sequential \
     (%.3fs)\n%!"
    tag shards par.wall;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_4.json" in
    write_chaos_json cfg ~out ~base ~empty ~chaotic ~stats ~shards
      ~par_wall:par.wall
  end

let () =
  let cfg = ref default in
  let rec parse = function
    | [] -> ()
    | "--perf" :: rest | "--" :: rest -> parse rest
    | "--k" :: v :: rest ->
      cfg := { !cfg with k = int_of_string v };
      parse rest
    | "--packets" :: v :: rest ->
      cfg := { !cfg with packets_per_host = int_of_string v };
      parse rest
    | "--shards" :: v :: rest ->
      let s = int_of_string v in
      if s < 0 then begin
        Printf.eprintf "perf: --shards expects a non-negative count\n";
        exit 2
      end;
      cfg := { !cfg with shards = s };
      parse rest
    | "--smoke" :: rest ->
      cfg := { !cfg with smoke = true };
      parse rest
    | "--tpp-heavy" :: rest ->
      cfg := { !cfg with tpp_heavy = true };
      parse rest
    | "--chaos" :: rest ->
      cfg := { !cfg with chaos = true };
      parse rest
    | "--out" :: v :: rest ->
      cfg := { !cfg with out = Some v };
      parse rest
    | "--wire-check" :: v :: rest ->
      let wc =
        match v with
        | "always" -> `Always
        | "cached" -> `Cached
        | "off" -> `Off
        | _ ->
          Printf.eprintf "perf: --wire-check expects always|cached|off\n";
          exit 2
      in
      cfg := { !cfg with wire_check = wc };
      parse rest
    | a :: _ ->
      Printf.eprintf "perf: unknown argument %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = !cfg in
  if cfg.chaos then chaos cfg
  else if cfg.tpp_heavy then tpp_heavy cfg
  else if cfg.smoke then smoke cfg
  else begin
    let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
    Printf.printf "perf: %s\n%!" (workload_of cfg);
    let r =
      if cfg.shards > 0 then begin
        Printf.printf "perf: parallel, %d shards on %d core(s)\n%!" cfg.shards
          (Domain.recommended_domain_count ());
        run_parallel cfg ~shards:cfg.shards
      end
      else run_sequential cfg
    in
    if cfg.shards > 0 then
      Printf.printf
        "perf: %d rounds, %d boundary frames over %d cut links, lookahead \
         %dns\n%!"
        r.rounds r.messages r.cut_links r.lookahead_ns;
    Printf.printf
      "perf: %d events, %d/%d packets delivered in %.3fs wall\n\
       perf: %.3e events/sec, %.3e packets/sec\n%!"
      r.events r.delivered sent r.wall
      (float_of_int r.events /. r.wall)
      (float_of_int r.delivered /. r.wall);
    let out =
      match cfg.out with
      | Some o -> o
      | None -> if cfg.shards > 0 then "BENCH_2.json" else "BENCH_1.json"
    in
    write_json cfg ~out r
  end
