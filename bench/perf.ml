(* Packet-rate benchmark: the dataplane fast-path gate.

   Drives a many-switch ECMP fat-tree with TPP-tagged UDP flows and
   reports end-to-end event and packet throughput of the simulator
   itself (wall-clock, not simulated time). Writes a machine-readable
   BENCH_<n>.json so successive PRs have a trajectory to beat.

     dune exec bench/perf.exe                 sequential engine -> BENCH_1.json
     dune exec bench/perf.exe -- --shards 4   parallel (tpp_parsim) -> BENCH_2.json
     dune exec bench/perf.exe -- --k 4        smaller fabric
     dune exec bench/perf.exe -- --smoke      quick CI check: sequential and
                                              2-shard runs must agree exactly
     dune exec bench/perf.exe -- --tpp-heavy  TCPU compilation gate: interpreter
                                              vs compiled backend -> BENCH_3.json
     dune exec bench/perf.exe -- --tpp-heavy --smoke
                                              quick CI check: compiled backend
                                              (sequential and 2-shard) must match
                                              the interpreter exactly
     dune exec bench/perf.exe -- --chaos      fault-injection gate: an attached
                                              empty schedule must be free, and a
                                              chaotic run must be bit-identical
                                              sequential vs sharded -> BENCH_4.json
     dune exec bench/perf.exe -- --chaos --smoke
                                              quick CI variant of the same gate
     dune exec bench/perf.exe -- --engine     event-core gate: typed slab events
                                              + timing-wheel scheduler vs the
                                              closure/heap baseline, with GC
                                              accounting -> BENCH_5.json
     dune exec bench/perf.exe -- --engine --smoke
                                              quick CI check: all scheduler and
                                              event-mode combinations (and a
                                              2-shard chaotic wheel run) must
                                              agree exactly
     dune exec bench/perf.exe -- --frames     zero-copy frame gate: pooled
                                              flat frames vs the unpooled
                                              allocate-per-send oracle, with
                                              chaos and sharded identity
                                              -> BENCH_6.json
     dune exec bench/perf.exe -- --frames --smoke
                                              quick CI check: pooled runs
                                              (plain, chaotic, 2-shard) must
                                              match the unpooled oracle and
                                              stay inside the allocation
                                              budget
     dune exec bench/perf.exe -- --telemetry  streaming-telemetry gate: the
                                              postcard pipeline must sustain
                                              >= 1e6 cards/sec in bounded
                                              memory, sketches must sit inside
                                              their proven error bounds of the
                                              exact oracles, and sequential vs
                                              sharded collectors must agree
                                              bit-for-bit -> BENCH_7.json
     dune exec bench/perf.exe -- --telemetry --smoke
                                              quick CI variant of the same gate
     dune exec bench/perf.exe -- --transports five-way transport testbed on a
                                              fat-tree (RCP*, TCP, DCTCP, NDP,
                                              TPP-LB): NDP's 99p short-flow FCT
                                              must beat TCP's at 60% load, all
                                              five transports must be
                                              bit-identical sequential vs
                                              sharded, NDP must complete every
                                              message under a chaotic drop
                                              schedule, and the trim hot path
                                              must stay allocation-free
                                              -> BENCH_8.json
     dune exec bench/perf.exe -- --transports --smoke
                                              quick CI variant of the same gate
     dune exec bench/perf.exe -- --scale      million-host fabric gate:
                                              aggregated FIBs must forward
                                              bit-identically to the per-host
                                              /32 oracle (sequentially and
                                              sharded) at ~1000x fewer entries,
                                              a 100k-host leaf-spine must build
                                              at <= 200 bytes/idle-host, and
                                              the k=16 fabric must hold
                                              BENCH_6's event rate
                                              -> BENCH_9.json
     dune exec bench/perf.exe -- --scale --smoke
                                              quick CI variant: k=8 route
                                              equivalence + leaf-spine
                                              delivery, bounded runtime
     dune exec bench/perf.exe -- --out b.json custom output path

   Every mode reports allocation provenance alongside throughput:
   minor-words/event and promoted-words/event from Gc.quick_stat deltas
   around the run (per-domain and summed for sharded runs).
*)

open Tpp

let collect_program =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Link:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n\
   PUSH [Link:Drops]\n"

type config = {
  k : int;                    (* fat-tree arity *)
  packets_per_host : int;
  payload_bytes : int;
  gap_ns : int;               (* inter-departure time per host *)
  wire_check : Net.wire_check;
  shards : int;               (* 0 = plain sequential engine *)
  smoke : bool;
  tpp_heavy : bool;           (* BENCH_3: TCPU backend comparison *)
  chaos : bool;               (* BENCH_4: fault-injection gate *)
  engine : bool;              (* BENCH_5: typed-event / wheel gate *)
  frames : bool;              (* BENCH_6: zero-copy frame / pool gate *)
  telemetry : bool;           (* BENCH_7: streaming-telemetry gate *)
  transports : bool;          (* BENCH_8: five-way transport gate *)
  scale : bool;               (* BENCH_9: million-host fabric gate *)
  out : string option;
}

let default =
  { k = 8; packets_per_host = 1500; payload_bytes = 1000; gap_ns = 6_000;
    wire_check = `Cached; shards = 0; smoke = false; tpp_heavy = false;
    chaos = false; engine = false; frames = false; telemetry = false;
    transports = false; scale = false; out = None }

let horizon = Time_ns.sec 10

let build ?event_mode cfg eng =
  let ft =
    Topology.fat_tree eng ~wire_check:cfg.wire_check ?event_mode ~ecmp:true
      ~k:cfg.k ~bps:10_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* GC provenance. [gc_mark]/[gc_delta] use quick_stat and are for
   single-domain (sequential) sections only: in OCaml 5 quick_stat
   AGGREGATES minor_words across every running domain, so summing
   per-shard quick_stat deltas counts each word once per shard — a
   4-shard run would report up to 4x its true allocation. Sharded runs
   must sample inside the shard with the [_local] variants below, which
   read only the calling domain's counters. *)
let gc_mark () =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words, s.Gc.promoted_words)

let gc_delta (m0, p0) =
  let s = Gc.quick_stat () in
  (s.Gc.minor_words -. m0, s.Gc.promoted_words -. p0)

(* Domain-local: Gc.minor_words is exact for the calling domain;
   Gc.counters' promoted_words lags by at most one minor-heap's worth
   (it updates at collection boundaries), which is noise at bench
   scale. Same tuple shape as gc_mark/gc_delta so call sites swap
   freely. *)
let gc_mark_local () =
  let _, promoted, _ = Gc.counters () in
  (Gc.minor_words (), promoted)

let gc_delta_local (m0, p0) =
  let _, promoted, _ = Gc.counters () in
  (Gc.minor_words () -. m0, promoted -. p0)

let per_event words events =
  if events = 0 then 0.0 else words /. float_of_int events

(* Identical traffic whether the net is the whole fabric or one shard:
   each host streams to a partner in the opposite half, so flows cross
   edge, aggregation and core layers and exercise ECMP. *)
let setup_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp_template = Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program) in
  let payload = Bytes.create cfg.payload_bytes in
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7
        ~tpp:(Prog.copy tpp_template) ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id then
      for j = 0 to cfg.packets_per_host - 1 do
        (* Offset hosts against each other so departures are not all
           simultaneous (keeps the event heap realistically mixed). *)
        let t = (j * cfg.gap_ns) + (src * 7) + 1 in
        Engine.at eng t (fun () -> send src)
      done
  done

type outcome = {
  events : int;
  delivered : int;
  wall : float;
  minor_pe : float;   (* minor words allocated per event processed *)
  promoted_pe : float;
  rounds : int;       (* parallel only *)
  messages : int;     (* frames that crossed a shard boundary *)
  cut_links : int;
  lookahead_ns : int;
}

let run_sequential ?scheduler ?event_mode cfg =
  let eng = Engine.create ?scheduler () in
  let net = build ?event_mode cfg eng in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let events = Engine.events_processed eng in
  { events; delivered = Net.frames_delivered net; wall;
    minor_pe = per_event minor events;
    promoted_pe = per_event promoted events;
    rounds = 0; messages = 0; cut_links = 0; lookahead_ns = 0 }

(* ---- TPP-heavy workload (BENCH_3): the TCPU compilation gate -------

   Long per-hop programs make the TCPU the dominant per-event cost, so
   the interpreter-vs-compiled instruction throughput is visible above
   the simulator's fixed overheads. The same workload runs under both
   backends (and sharded), and every architectural observable — events,
   deliveries, faults, execs, cycles, switch registers, SRAM — must be
   bit-identical. *)

let heavy_block =
  "LOAD [Switch:PacketsSeen], [Packet:0]\n\
   LOAD [Link:QueueSize], [Packet:4]\n\
   ADD [Packet:0], [Packet:4]\n\
   LOAD [Link:TxBytes], [Packet:8]\n\
   MAX [Packet:8], [Packet:0]\n\
   AND [Packet:0], 0xFFF\n\
   OR [Packet:4], 7\n\
   SUB [Packet:8], [Packet:4]\n\
   ADD [Packet:12], 1\n\
   MIN [Packet:12], 0xFFF\n\
   MOV [Packet:16], [Packet:8]\n\
   ADD [Packet:16], [Packet:0]\n"

let heavy_program =
  (* mask 0 always passes: the CEXEC is here to keep the pool machinery
     on the hot path, not to filter. 8 blocks = 99 instructions, still
     inside the 300-cycle budget (4 + 99 cycles). *)
  "CEXEC [Switch:Version], 0, 0\n"
  ^ String.concat "" (List.init 8 (fun _ -> heavy_block))
  ^ "ADD [Sram:7], 1\n\
     MAX [Sram:8], [Link:QueueSize]\n"

(* Every 16th packet of each host carries this instead: the STORE to a
   read-only register faults at the first hop, exercising the faulted-
   TPP inert path and fault accounting under both backends. *)
let heavy_fault_program =
  "ADD [Sram:9], 1\n\
   STORE [Switch:SwitchID], 1\n\
   ADD [Sram:9], 1\n"

let setup_heavy_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp_template = Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_program) in
  let fault_template = Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_fault_program) in
  let payload = Bytes.create cfg.payload_bytes in
  let send src faulty =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let tpp = Prog.copy (if faulty then fault_template else tpp_template) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7 ~tpp ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id then
      for j = 0 to cfg.packets_per_host - 1 do
        let t = (j * cfg.gap_ns) + (src * 7) + 1 in
        (* The faulting-packet choice depends only on (src, j), so the
           set is identical whatever the shard layout. *)
        Engine.at eng t (fun () -> send src (j mod 16 = 0))
      done
  done

(* Per-switch register fingerprint, same shape as test_parsim's. The
   compile hit/miss counters are deliberately excluded: each shard links
   its own template family, so the hit/miss split — unlike every
   architectural register — legitimately varies with the shard count. *)
module SS = Switch_state

let sram_hash (st : SS.t) =
  Array.fold_left (fun acc w -> (acc * 1_000_003) + w) 0 st.SS.sram

let port_fp (p : SS.Port.t) =
  [
    p.SS.Port.rx_bytes; p.rx_pkts; p.tx_bytes; p.tx_pkts; p.drops;
    p.offered_bytes; p.queue_bytes;
  ]

let switch_fp id sw =
  let st = Switch.state sw in
  ( id,
    [
      st.SS.packets_seen; st.SS.bytes_seen; st.SS.drops; st.SS.tpp_execs;
      st.SS.tpp_faults; st.SS.tpp_cycles; sram_hash st;
    ]
    @ List.concat_map port_fp (Array.to_list st.SS.ports) )

let net_fp ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.map (fun (id, sw) -> switch_fp id sw)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type tpp_totals = {
  t_execs : int;
  t_faults : int;
  t_cycles : int;
  t_hits : int;    (* per-switch compile-cache hits, observability only *)
  t_misses : int;
}

let tpp_zero = { t_execs = 0; t_faults = 0; t_cycles = 0; t_hits = 0; t_misses = 0 }

let tpp_add a b =
  {
    t_execs = a.t_execs + b.t_execs;
    t_faults = a.t_faults + b.t_faults;
    t_cycles = a.t_cycles + b.t_cycles;
    t_hits = a.t_hits + b.t_hits;
    t_misses = a.t_misses + b.t_misses;
  }

let tpp_totals_of ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.fold_left
       (fun acc (_, sw) ->
         let st = Switch.state sw in
         tpp_add acc
           {
             t_execs = st.SS.tpp_execs;
             t_faults = st.SS.tpp_faults;
             t_cycles = st.SS.tpp_cycles;
             t_hits = st.SS.tpp_compile_hits;
             t_misses = st.SS.tpp_compile_misses;
           })
       tpp_zero

(* Instructions actually executed: every exec costs 4 fill cycles plus
   one cycle per instruction, so the instruction count falls out of the
   two counters the ASIC already keeps. *)
let instrs_of t = t.t_cycles - (4 * t.t_execs)

type heavy_run = {
  h_events : int;
  h_delivered : int;
  h_wall : float;
  h_minor_pe : float;
  h_promoted_pe : float;
  h_totals : tpp_totals;
  h_fp : (int * int list) list;
}

let run_heavy_sequential cfg ~backend =
  Tcpu.set_default_backend backend;
  let eng = Engine.create () in
  let net = build cfg eng in
  setup_heavy_traffic cfg ~owns:(fun _ -> true) net;
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  Tcpu.set_default_backend Tcpu.Compiled;
  let events = Engine.events_processed eng in
  {
    h_events = events;
    h_delivered = Net.frames_delivered net;
    h_wall = wall;
    h_minor_pe = per_event minor events;
    h_promoted_pe = per_event promoted events;
    h_totals = tpp_totals_of ~owns:(fun _ -> true) net;
    h_fp = net_fp ~owns:(fun _ -> true) net;
  }

let run_heavy_parallel cfg ~shards =
  let marks = Array.make shards (0.0, 0.0) in
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard ~owns net ->
        setup_heavy_traffic cfg ~owns net;
        marks.(shard) <- gc_mark_local ())
      ~collect:(fun ~shard ~owns net ->
        (tpp_totals_of ~owns net, net_fp ~owns net,
         gc_delta_local marks.(shard)))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let totals =
    Array.fold_left (fun acc (t, _, _) -> tpp_add acc t) tpp_zero parts
  in
  let fp =
    Array.to_list parts
    |> List.concat_map (fun (_, fp, _) -> fp)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let minor = Array.fold_left (fun a (_, _, (m, _)) -> a +. m) 0.0 parts in
  let promoted = Array.fold_left (fun a (_, _, (_, p)) -> a +. p) 0.0 parts in
  {
    h_events = stats.Parsim.events;
    h_delivered = stats.Parsim.delivered;
    h_wall = wall;
    h_minor_pe = per_event minor stats.Parsim.events;
    h_promoted_pe = per_event promoted stats.Parsim.events;
    h_totals = totals;
    h_fp = fp;
  }

(* Everything architectural must match; wall time and compile counters
   may differ. Exits non-zero on divergence: a fast wrong TCPU is not a
   result. *)
let check_heavy_identity ~label (ref_ : heavy_run) (got : heavy_run) =
  let fail what a b =
    Printf.eprintf "perf(tpp-heavy): FAIL — %s: %s differs (%d vs %d)\n" label
      what a b;
    exit 1
  in
  if ref_.h_events <> got.h_events then fail "events" ref_.h_events got.h_events;
  if ref_.h_delivered <> got.h_delivered then
    fail "delivered" ref_.h_delivered got.h_delivered;
  if ref_.h_totals.t_execs <> got.h_totals.t_execs then
    fail "tpp_execs" ref_.h_totals.t_execs got.h_totals.t_execs;
  if ref_.h_totals.t_faults <> got.h_totals.t_faults then
    fail "tpp_faults" ref_.h_totals.t_faults got.h_totals.t_faults;
  if ref_.h_totals.t_cycles <> got.h_totals.t_cycles then
    fail "tpp_cycles" ref_.h_totals.t_cycles got.h_totals.t_cycles;
  if ref_.h_fp <> got.h_fp then begin
    Printf.eprintf
      "perf(tpp-heavy): FAIL — %s: switch register fingerprints differ\n" label;
    exit 1
  end

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let wire_check_name = function
  | `Always -> "always"
  | `Cached -> "cached"
  | `Off -> "off"

let workload_of cfg =
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d TPP-tagged UDP packets, %dB \
     payload, wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let heavy_workload_of cfg =
  let program_len =
    Array.length
      (Result.get_ok (Asm.to_tpp ~mem_len:32 heavy_program)).Prog.program
  in
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d UDP packets, %d-instr TPP per hop \
     (1 in 16 packets faulting), %dB payload, wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host program_len cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let write_heavy_json cfg ~out ~interp ~comp ~par ~shards ~speedup
    ~(cache : Tcpu_compile.cache_stats) =
  let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
  let instrs = instrs_of comp.h_totals in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 3,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"tpp_execs\": %d,\n\
    \  \"tpp_faults\": %d,\n\
    \  \"tpp_instrs\": %d,\n\
    \  \"interpreter_wall_s\": %.6f,\n\
    \  \"interpreter_instrs_per_sec\": %.1f,\n\
    \  \"compiled_wall_s\": %.6f,\n\
    \  \"compiled_instrs_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"promoted_words_per_event\": %.4f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"identical_to_interpreter\": true,\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": true },\n\
    \  \"cache\": { \"programs\": %d, \"hits\": %d, \"misses\": %d }\n\
     }\n"
    (heavy_workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    comp.h_events sent comp.h_delivered comp.h_totals.t_execs
    comp.h_totals.t_faults instrs interp.h_wall
    (float_of_int instrs /. interp.h_wall)
    comp.h_wall
    (float_of_int instrs /. comp.h_wall)
    comp.h_minor_pe comp.h_promoted_pe
    speedup shards par.h_wall cache.Tcpu_compile.programs
    cache.Tcpu_compile.hits cache.Tcpu_compile.misses;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* The BENCH_3 gate: same heavy workload under the interpreter, the
   compiled backend, and a sharded compiled run. Identity is mandatory;
   the >= 2x instruction-throughput target is reported (and written to
   the JSON) but only warned about, like BENCH_2's core-count caveat. *)
let tpp_heavy cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 150 } else cfg
  in
  let tag = if cfg.smoke then "perf(tpp-heavy smoke)" else "perf(tpp-heavy)" in
  Printf.printf "%s: %s\n%!" tag (heavy_workload_of cfg);
  Tcpu_compile.clear_cache ();
  let interp = run_heavy_sequential cfg ~backend:Tcpu.Interpreter in
  Tcpu_compile.clear_cache ();
  let comp = run_heavy_sequential cfg ~backend:Tcpu.Compiled in
  let cache = Tcpu_compile.cache_stats () in
  check_heavy_identity ~label:"compiled vs interpreter" interp comp;
  let shards = if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4 in
  let par = run_heavy_parallel cfg ~shards in
  check_heavy_identity
    ~label:(Printf.sprintf "%d-shard compiled vs interpreter" shards)
    interp par;
  let instrs = instrs_of comp.h_totals in
  let speedup = interp.h_wall /. comp.h_wall in
  Printf.printf
    "%s: %d events, %d delivered, %d TPP execs (%d faulted), %d instructions\n\
     %s: interpreter %.3fs (%.3e instrs/sec)\n\
     %s: compiled    %.3fs (%.3e instrs/sec)  speedup %.2fx\n\
     %s: %d-shard compiled %.3fs — identical registers\n\
     %s: cache %d program(s), %d hits / %d misses; per-switch linked \
     hits %d / misses %d\n%!"
    tag comp.h_events comp.h_delivered comp.h_totals.t_execs
    comp.h_totals.t_faults instrs tag interp.h_wall
    (float_of_int instrs /. interp.h_wall)
    tag comp.h_wall
    (float_of_int instrs /. comp.h_wall)
    speedup tag shards par.h_wall tag cache.Tcpu_compile.programs
    cache.Tcpu_compile.hits cache.Tcpu_compile.misses comp.h_totals.t_hits
    comp.h_totals.t_misses;
  Printf.printf
    "%s: OK — compiled backend matches the interpreter bit-for-bit\n%!" tag;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_3.json" in
    write_heavy_json cfg ~out ~interp ~comp ~par ~shards ~speedup ~cache;
    if speedup < 2.0 then
      Printf.printf
        "%s: WARNING — speedup %.2fx below the 2x target on this machine\n%!"
        tag speedup
  end

let write_json cfg ~out r =
  let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": %d,\n\
    \  \"workload\": \"%s\",\n\
    \  \"shards\": %d,\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"boundary_messages\": %d,\n\
    \  \"cut_links\": %d,\n\
    \  \"lookahead_ns\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"packets_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"promoted_words_per_event\": %.4f\n\
     }\n"
    (if cfg.shards > 0 then 2 else 1)
    (workload_of cfg) cfg.shards (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    r.events sent r.delivered r.rounds r.messages r.cut_links r.lookahead_ns
    r.wall
    (float_of_int r.events /. r.wall)
    (float_of_int r.delivered /. r.wall)
    r.minor_pe r.promoted_pe;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* A fast cross-check for CI: the sequential engine and an N-shard
   parallel run of a small fabric must agree on every count and every
   switch register. Honors --shards (default 2) so CI can probe the
   wider merge paths cheaply. Bit-identity only — never speed: the
   speedup gate lives in the full --shards bench, behind a core-count
   probe. *)
let smoke cfg =
  let shards = if cfg.shards > 0 then cfg.shards else 2 in
  let cfg = { cfg with k = 4; packets_per_host = 200 } in
  Printf.printf "perf(smoke): %s, %d shards\n%!" (workload_of cfg) shards;
  let eng = Engine.create () in
  let net = build cfg eng in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let s_wall = Unix.gettimeofday () -. t0 in
  let s_events = Engine.events_processed eng in
  let s_delivered = Net.frames_delivered net in
  let s_fp = net_fp ~owns:(fun _ -> true) net in
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard:_ ~owns net -> setup_traffic cfg ~owns net)
      ~collect:(fun ~shard:_ ~owns net -> net_fp ~owns net)
      ()
  in
  let p_wall = Unix.gettimeofday () -. t0 in
  let p_fp =
    Array.to_list parts |> List.concat
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf
    "perf(smoke): sequential %d events / %d delivered (%.3fs), %d-shard %d \
     events / %d delivered (%.3fs, %d rounds, %d boundary frames in %d \
     chunks)\n%!"
    s_events s_delivered s_wall shards stats.Parsim.events
    stats.Parsim.delivered p_wall stats.Parsim.rounds stats.Parsim.messages
    stats.Parsim.chunks;
  if s_events <> stats.Parsim.events || s_delivered <> stats.Parsim.delivered
  then begin
    Printf.eprintf "perf(smoke): FAIL — parallel run diverged from sequential\n";
    exit 1
  end;
  if s_fp <> p_fp then begin
    Printf.eprintf
      "perf(smoke): FAIL — switch register fingerprints differ from \
       sequential\n";
    exit 1
  end;
  if stats.Parsim.boundary_outstanding <> 0 then begin
    Printf.eprintf
      "perf(smoke): FAIL — %d boundary frames never returned to their pools\n"
      stats.Parsim.boundary_outstanding;
    exit 1
  end;
  Printf.printf
    "perf(smoke): OK — %d-shard run bit-identical to sequential (registers \
     included), boundary pools drained\n%!"
    shards

(* ---- chaos workload (BENCH_4): the fault-injection gate ------------

   Two properties the Fault subsystem must never lose:

   1. Zero cost when unattached. The dataplane consults the fault hooks
      only when a schedule is installed, and an installed-but-empty
      schedule must not change a single count (and must cost next to
      nothing in wall time).

   2. Determinism under sharding. A chaotic schedule — flap, loss,
      corruption, freeze-restart, degradation all at once — must yield
      bit-identical event/delivery/fault counts whether the run is
      sequential or sharded.

   The faulted cables are host access links plus the edge switch above
   host 1: these carry traffic by construction, where an arbitrary core
   uplink may be starved by ECMP hashing. Fault windows scale with the
   send span so every rule fires at any --packets setting. *)

let chaos_seed = 4242

let chaos_schedule cfg net =
  let span = cfg.packets_per_host * cfg.gap_ns in
  let f = Fault.create ~seed:chaos_seed in
  let hosts = Array.of_list (Net.hosts net) in
  let access i = (hosts.(i).Net.node_id, 0) in
  let edge_above i =
    match Net.neighbors net hosts.(i).Net.node_id with
    | (_, peer, _) :: _ -> peer
    | [] -> invalid_arg "chaos_schedule: host has no uplink"
  in
  let period = max 2 (span / 25) in
  Fault.flap f ~from_:(span / 10) ~until_:(span * 4 / 5) ~period
    ~down_for:(max 1 (period * 2 / 5)) (access 0);
  Fault.lossy f ~from_:0 ~until_:span ~drop:0.2 ~corrupt:0.05 (access 5);
  Fault.freeze f ~from_:(span / 5) ~until_:(span * 2 / 5) (edge_above 1);
  Fault.degrade f ~from_:(span / 3) ~until_:(span * 9 / 10) ~rate_factor:0.5
    ~extra_delay:(Time_ns.us 2) (access 9);
  Fault.attach f net;
  f

let fault_fp (s : Fault.stats) =
  [
    s.Fault.lost_down; s.Fault.dropped; s.Fault.corrupt_header;
    s.Fault.corrupt_fcs; s.Fault.frozen_arrivals; s.Fault.restarts;
  ]

let fault_fp_add = List.map2 ( + )

(* Sequential run with an arbitrary fault setup applied post-build. *)
let run_sequential_faulted ?scheduler cfg ~fault =
  let eng = Engine.create ?scheduler () in
  let net = build cfg eng in
  let f = fault net in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let events = Engine.events_processed eng in
  ( { events; delivered = Net.frames_delivered net; wall;
      minor_pe = per_event minor events;
      promoted_pe = per_event promoted events;
      rounds = 0; messages = 0; cut_links = 0; lookahead_ns = 0 },
    f )

let run_parallel_chaos ?scheduler cfg ~shards =
  let faults = Array.make shards None in
  let marks = Array.make shards (0.0, 0.0) in
  let t0 = Unix.gettimeofday () in
  let stats, per_shard =
    Parsim.run ?scheduler ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard ~owns net ->
        faults.(shard) <- Some (chaos_schedule cfg net);
        setup_traffic cfg ~owns net;
        marks.(shard) <- gc_mark_local ())
      ~collect:(fun ~shard ~owns:_ _ ->
        (fault_fp (Fault.stats (Option.get faults.(shard))),
         gc_delta_local marks.(shard)))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let fp =
    Array.fold_left
      (fun acc (f, _) -> fault_fp_add acc f)
      [ 0; 0; 0; 0; 0; 0 ] per_shard
  in
  let minor = Array.fold_left (fun a (_, (m, _)) -> a +. m) 0.0 per_shard in
  let promoted = Array.fold_left (fun a (_, (_, p)) -> a +. p) 0.0 per_shard in
  ( { events = stats.Parsim.events; delivered = stats.Parsim.delivered; wall;
      minor_pe = per_event minor stats.Parsim.events;
      promoted_pe = per_event promoted stats.Parsim.events;
      rounds = stats.Parsim.rounds; messages = stats.Parsim.messages;
      cut_links = stats.Parsim.cut_links; lookahead_ns = stats.Parsim.lookahead },
    fp )

let write_chaos_json cfg ~out ~base ~empty ~(chaotic : outcome)
    ~(stats : Fault.stats) ~shards ~par_wall =
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 4,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"baseline_wall_s\": %.6f,\n\
    \  \"empty_schedule_wall_s\": %.6f,\n\
    \  \"empty_schedule_overhead\": %.4f,\n\
    \  \"chaos_events\": %d,\n\
    \  \"chaos_delivered\": %d,\n\
    \  \"chaos_wall_s\": %.6f,\n\
    \  \"chaos_events_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"promoted_words_per_event\": %.4f,\n\
    \  \"faults\": { \"lost_down\": %d, \"dropped\": %d, \"corrupt_header\": \
     %d, \"corrupt_fcs\": %d, \"frozen_arrivals\": %d, \"restarts\": %d },\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": true }\n\
     }\n"
    (workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    base.wall empty.wall (empty.wall /. base.wall) chaotic.events
    chaotic.delivered chaotic.wall
    (float_of_int chaotic.events /. chaotic.wall)
    chaotic.minor_pe chaotic.promoted_pe
    stats.Fault.lost_down stats.Fault.dropped stats.Fault.corrupt_header
    stats.Fault.corrupt_fcs stats.Fault.frozen_arrivals stats.Fault.restarts
    shards par_wall;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

let chaos cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 200 } else cfg
  in
  let tag = if cfg.smoke then "perf(chaos smoke)" else "perf(chaos)" in
  Printf.printf "%s: %s\n%!" tag (workload_of cfg);
  (* 1. Zero cost when unattached: an empty schedule changes nothing.
     Best of two runs each, so a scheduler hiccup on a short smoke run
     cannot fake a regression. *)
  let best_of_two run =
    let a = run () in
    let b = run () in
    if b.wall < a.wall then b else a
  in
  let base = best_of_two (fun () -> run_sequential cfg) in
  let empty =
    best_of_two (fun () ->
        fst
          (run_sequential_faulted cfg ~fault:(fun net ->
               let f = Fault.create ~seed:1 in
               Fault.attach f net;
               f)))
  in
  if base.events <> empty.events || base.delivered <> empty.delivered then begin
    Printf.eprintf
      "%s: FAIL — empty fault schedule changed counts (%d/%d events, %d/%d \
       delivered)\n"
      tag base.events empty.events base.delivered empty.delivered;
    exit 1
  end;
  let overhead = empty.wall /. base.wall in
  Printf.printf
    "%s: baseline %.3fs, empty schedule attached %.3fs (%.2fx)\n%!" tag
    base.wall empty.wall overhead;
  if overhead > 1.5 then begin
    Printf.eprintf
      "%s: FAIL — empty fault schedule costs %.2fx (budget 1.5x)\n" tag
      overhead;
    exit 1
  end;
  (* 2. Determinism under sharding: full chaos, sequential vs sharded. *)
  let chaotic, f = run_sequential_faulted cfg ~fault:(chaos_schedule cfg) in
  let stats = Fault.stats f in
  Printf.printf
    "%s: chaotic run %d events, %d delivered in %.3fs\n\
     %s: lost_down=%d dropped=%d corrupt=%d+%d frozen=%d restarts=%d\n%!"
    tag chaotic.events chaotic.delivered chaotic.wall tag
    stats.Fault.lost_down stats.Fault.dropped stats.Fault.corrupt_header
    stats.Fault.corrupt_fcs stats.Fault.frozen_arrivals stats.Fault.restarts;
  if
    stats.Fault.lost_down = 0 || stats.Fault.dropped = 0
    || stats.Fault.corrupt_header + stats.Fault.corrupt_fcs = 0
    || stats.Fault.frozen_arrivals = 0 || stats.Fault.restarts <> 1
  then begin
    Printf.eprintf "%s: FAIL — some fault class never fired\n" tag;
    exit 1
  end;
  let shards = if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4 in
  let par, par_fp = run_parallel_chaos cfg ~shards in
  if
    chaotic.events <> par.events
    || chaotic.delivered <> par.delivered
    || fault_fp stats <> par_fp
  then begin
    Printf.eprintf
      "%s: FAIL — %d-shard chaotic run diverged from sequential\n" tag shards;
    exit 1
  end;
  Printf.printf
    "%s: OK — empty schedule free, %d-shard chaos identical to sequential \
     (%.3fs)\n%!"
    tag shards par.wall;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_4.json" in
    write_chaos_json cfg ~out ~base ~empty ~chaotic ~stats ~shards
      ~par_wall:par.wall
  end

(* ---- engine workload (BENCH_5): the typed-event / wheel gate --------

   Three layers of evidence that the allocation-free event core is both
   faster and exactly equivalent to what it replaced:

   1. A scheduler microbench — 64 self-rescheduling tokens, each with
      its own stride, so the queue always holds 64 pending events at
      mixed horizons. No network, no frames: pure event-core cost. The
      typed/wheel core must allocate ~0 minor words per event.

   2. The full fabric with plain (untagged) UDP traffic, so the event
      core rather than the TCPU dominates. Closure+heap reproduces the
      pre-typed allocation profile; typed+heap and typed+wheel must
      match it on events, deliveries and every switch register, and
      typed+wheel must beat it by >= 1.3x.

   3. The chaotic schedule of BENCH_4 run sequentially under both
      schedulers and sharded under the wheel — all bit-identical. *)

let setup_plain_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let payload = Bytes.create cfg.payload_bytes in
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7 ~payload ()
    in
    Net.host_send net s frame
  in
  (* Self-scheduling sends: host [src]'s thunk sends packet [j], then
     schedules packet [j+1] at the same timestamp formula the old
     schedule-everything-up-front loop used — the simulated workload is
     unchanged. What changes is residency: pre-scheduling parks
     hosts x packets closures and wheel entries for the whole run,
     which at fat-tree scale is tens of MB of cold slab that every
     wheel cascade walks and the GC's mark phase chews through.
     Lazily, the wheel holds one pending send per host plus the
     in-flight dataplane events, and stays cache-resident. *)
  let rec tick src j () =
    send src;
    let j = j + 1 in
    if j < cfg.packets_per_host then
      Engine.at eng ((j * cfg.gap_ns) + (src * 7) + 1) (tick src j)
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id && cfg.packets_per_host > 0 then
      Engine.at eng ((src * 7) + 1) (tick src 0)
  done

let engine_core ~scheduler ~typed ~events =
  let eng = Engine.create ~scheduler () in
  let budget = ref events in
  let stride node = 1 + ((node * 7919) land 0xFFFF) in
  (if typed then begin
     let rec h =
       { Engine.on_deliver = (fun ~node:_ ~port:_ _ -> ());
         on_dequeue =
           (fun ~node ~port ->
             if !budget > 0 then begin
               decr budget;
               Engine.dequeue_at eng (Engine.now eng + stride node) h ~node
                 ~port
             end);
         on_restart = (fun ~node:_ -> ()) }
     in
     for node = 0 to 63 do
       Engine.dequeue_at eng (stride node) h ~node ~port:0
     done
   end
   else
     let rec tick node () =
       if !budget > 0 then begin
         decr budget;
         Engine.at eng (Engine.now eng + stride node) (tick node)
       end
     in
     for node = 0 to 63 do
       Engine.at eng (stride node) (tick node)
     done);
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:max_int;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let processed = Engine.events_processed eng in
  (processed, wall, per_event minor processed, per_event promoted processed)

type engine_run = {
  g_events : int;
  g_delivered : int;
  g_wall : float;
  g_minor_pe : float;
  g_promoted_pe : float;
  g_fp : (int * int list) list;
}

let run_engine_fabric cfg ~scheduler ~event_mode =
  let eng = Engine.create ~scheduler () in
  let net = build ~event_mode cfg eng in
  setup_plain_traffic cfg ~owns:(fun _ -> true) net;
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let events = Engine.events_processed eng in
  { g_events = events; g_delivered = Net.frames_delivered net; g_wall = wall;
    g_minor_pe = per_event minor events;
    g_promoted_pe = per_event promoted events;
    g_fp = net_fp ~owns:(fun _ -> true) net }

let engine_workload_of cfg =
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d plain UDP packets, %dB payload, \
     wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let write_engine_json cfg ~out ~(base : engine_run) ~(th : engine_run)
    ~(tw : engine_run) ~core ~core_base ~core_events ~speedup ~shards
    ~par_wall =
  let c_ev, c_wall, c_minor, c_prom = core in
  let b_ev, b_wall, b_minor, _ = core_base in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 5,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"promoted_words_per_event\": %.4f,\n\
    \  \"speedup_vs_closure_heap\": %.3f,\n\
    \  \"baseline\": { \"scheduler\": \"heap\", \"event_mode\": \"closure\",\n\
    \                \"events\": %d, \"wall_s\": %.6f, \"events_per_sec\": \
     %.1f,\n\
    \                \"minor_words_per_event\": %.3f },\n\
    \  \"typed_heap\": { \"events\": %d, \"wall_s\": %.6f, \
     \"events_per_sec\": %.1f,\n\
    \                  \"minor_words_per_event\": %.3f },\n\
    \  \"core\": { \"events\": %d,\n\
    \            \"typed_wheel\": { \"processed\": %d, \"wall_s\": %.6f, \
     \"events_per_sec\": %.1f, \"minor_words_per_event\": %.3f, \
     \"promoted_words_per_event\": %.4f },\n\
    \            \"closure_heap\": { \"processed\": %d, \"wall_s\": %.6f, \
     \"events_per_sec\": %.1f, \"minor_words_per_event\": %.3f } },\n\
    \  \"sharded_chaos\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": \
     true },\n\
    \  \"identical\": true\n\
     }\n"
    (engine_workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    tw.g_events tw.g_delivered tw.g_wall
    (float_of_int tw.g_events /. tw.g_wall)
    tw.g_minor_pe tw.g_promoted_pe speedup base.g_events base.g_wall
    (float_of_int base.g_events /. base.g_wall)
    base.g_minor_pe th.g_events th.g_wall
    (float_of_int th.g_events /. th.g_wall)
    th.g_minor_pe core_events c_ev c_wall
    (float_of_int c_ev /. c_wall)
    c_minor c_prom b_ev b_wall
    (float_of_int b_ev /. b_wall)
    b_minor shards par_wall;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

let engine_bench cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 200 } else cfg
  in
  let tag = if cfg.smoke then "perf(engine smoke)" else "perf(engine)" in
  Printf.printf "%s: %s\n%!" tag (engine_workload_of cfg);
  (* 1. Pure event-core microbench: the typed/wheel core must process
     events without minor allocation. *)
  let core_events = if cfg.smoke then 200_000 else 2_000_000 in
  let ((_, _, b_minor, _) as core_base) =
    engine_core ~scheduler:`Heap ~typed:false ~events:core_events
  in
  let ((_, _, c_minor, _) as core) =
    engine_core ~scheduler:`Wheel ~typed:true ~events:core_events
  in
  let pr name (ev, wall, minor, promoted) =
    Printf.printf
      "%s: core %-13s %d events in %.3fs (%.3e ev/s, %.2f minor w/ev, %.4f \
       promoted w/ev)\n%!"
      tag name ev wall
      (float_of_int ev /. wall)
      minor promoted
  in
  pr "closure+heap" core_base;
  pr "typed+wheel" core;
  if c_minor > 0.5 then begin
    Printf.eprintf
      "%s: FAIL — typed/wheel core allocates %.2f minor words/event (budget \
       0.5)\n"
      tag c_minor;
    exit 1
  end;
  if b_minor <= 0.5 then
    Printf.printf
      "%s: note — closure/heap core also near-zero alloc (%.2f w/ev)\n%!" tag
      b_minor;
  (* 2. Fabric identity and speedup. Best of two runs per variant so a
     scheduler hiccup cannot fake (or hide) a regression. *)
  let best_of_two run =
    let a = run () in
    let b = run () in
    if b.g_wall < a.g_wall then b else a
  in
  let base =
    best_of_two (fun () ->
        run_engine_fabric cfg ~scheduler:`Heap ~event_mode:`Closure)
  in
  let th =
    best_of_two (fun () ->
        run_engine_fabric cfg ~scheduler:`Heap ~event_mode:`Typed)
  in
  let tw =
    best_of_two (fun () ->
        run_engine_fabric cfg ~scheduler:`Wheel ~event_mode:`Typed)
  in
  let check label (a : engine_run) (b : engine_run) =
    if a.g_events <> b.g_events || a.g_delivered <> b.g_delivered then begin
      Printf.eprintf
        "%s: FAIL — %s diverged from closure+heap (%d/%d events, %d/%d \
         delivered)\n"
        tag label a.g_events b.g_events a.g_delivered b.g_delivered;
      exit 1
    end;
    if a.g_fp <> b.g_fp then begin
      Printf.eprintf
        "%s: FAIL — %s: switch register fingerprints differ\n" tag label;
      exit 1
    end
  in
  check "typed+heap" base th;
  check "typed+wheel" base tw;
  let fab name (r : engine_run) =
    Printf.printf
      "%s: fabric %-13s %d events, %d delivered in %.3fs (%.3e ev/s, %.2f \
       minor w/ev)\n%!"
      tag name r.g_events r.g_delivered r.g_wall
      (float_of_int r.g_events /. r.g_wall)
      r.g_minor_pe
  in
  fab "closure+heap" base;
  fab "typed+heap" th;
  fab "typed+wheel" tw;
  let speedup = base.g_wall /. tw.g_wall in
  Printf.printf "%s: typed+wheel speedup over closure+heap: %.2fx\n%!" tag
    speedup;
  (* 3. Chaos determinism: both schedulers sequentially, wheel sharded. *)
  let chaotic_w, fw =
    run_sequential_faulted ~scheduler:`Wheel cfg ~fault:(chaos_schedule cfg)
  in
  let chaotic_h, fh =
    run_sequential_faulted ~scheduler:`Heap cfg ~fault:(chaos_schedule cfg)
  in
  if
    chaotic_w.events <> chaotic_h.events
    || chaotic_w.delivered <> chaotic_h.delivered
    || fault_fp (Fault.stats fw) <> fault_fp (Fault.stats fh)
  then begin
    Printf.eprintf
      "%s: FAIL — chaotic run differs between wheel and heap schedulers\n" tag;
    exit 1
  end;
  let shards =
    if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4
  in
  let par, par_fp = run_parallel_chaos ~scheduler:`Wheel cfg ~shards in
  if
    chaotic_w.events <> par.events
    || chaotic_w.delivered <> par.delivered
    || fault_fp (Fault.stats fw) <> par_fp
  then begin
    Printf.eprintf
      "%s: FAIL — %d-shard chaotic wheel run diverged from sequential\n\
       %s:   events %d vs %d, delivered %d vs %d\n\
       %s:   faults [%s] vs [%s]\n"
      tag shards tag chaotic_w.events par.events chaotic_w.delivered
      par.delivered tag
      (String.concat ";" (List.map string_of_int (fault_fp (Fault.stats fw))))
      (String.concat ";" (List.map string_of_int par_fp));
    exit 1
  end;
  Printf.printf
    "%s: OK — typed events and wheel scheduler bit-identical to the \
     closure/heap baseline (plain, chaotic, %d-shard)\n%!"
    tag shards;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_5.json" in
    write_engine_json cfg ~out ~base ~th ~tw ~core ~core_base ~core_events
      ~speedup ~shards ~par_wall:par.wall;
    if speedup < 1.3 then
      Printf.printf
        "%s: WARNING — speedup %.2fx below the 1.3x target on this machine\n%!"
        tag speedup
  end

(* ---- flat-frame workload (BENCH_6): the zero-copy frame gate --------

   The flat Bytes-backed frame representation with per-flow pools must
   be (a) allocation-light — the whole simulator, not just the event
   core, within 10 minor words per event on the BENCH_5 plain-traffic
   workload — and (b) observably identical to the unpooled path. The
   unpooled run allocates a fresh frame per send, exactly the lifecycle
   the record-frame representation had (and the QCheck differential
   suite pins the flat codecs to the record codecs byte-for-byte), so
   it is the oracle: events, deliveries and every switch register must
   match bit-for-bit on the plain run, under the BENCH_4 chaos
   schedule, and on a sharded run. Both sides run typed events on the
   wheel scheduler — the BENCH_5 winner — so the delta measured here is
   the frame representation and pooling, nothing else. *)

let setup_pooled_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let payload = Bytes.create cfg.payload_bytes in
  (* One pool per sending host — per-flow in this workload, since each
     host originates exactly one flow. Pools are created here, in the
     calling domain; for a sharded run setup executes on the shard's
     own domain, so recycling at delivery is a same-domain operation
     for intra-shard traffic and a safe no-op across a boundary. *)
  let pools =
    Array.map (fun _ -> Frame.Pool.create ~capacity:64 ~frame_bytes:2048 ())
      hosts
  in
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.Pool.udp_frame pools.(src) ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac
        ~src_ip:s.Net.ip ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7
        ~payload ()
    in
    Net.host_send net s frame
  in
  (* Same self-scheduling shape as [setup_plain_traffic] — the two are
     compared event-for-event by the frames gate, so their send
     scheduling must stay mirror images. *)
  let rec tick src j () =
    send src;
    let j = j + 1 in
    if j < cfg.packets_per_host then
      Engine.at eng ((j * cfg.gap_ns) + (src * 7) + 1) (tick src j)
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id && cfg.packets_per_host > 0 then
      Engine.at eng ((src * 7) + 1) (tick src 0)
  done;
  pools

let pool_totals pools =
  Array.fold_left
    (fun (c, r, o) p ->
      ( c + Frame.Pool.created p,
        r + Frame.Pool.reused p,
        o + Frame.Pool.outstanding p ))
    (0, 0, 0) pools

let run_frames_fabric cfg ~pooled =
  let eng = Engine.create ~scheduler:`Wheel () in
  let net = build ~event_mode:`Typed cfg eng in
  let pools =
    if pooled then setup_pooled_traffic cfg ~owns:(fun _ -> true) net
    else begin
      setup_plain_traffic cfg ~owns:(fun _ -> true) net;
      [||]
    end
  in
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let events = Engine.events_processed eng in
  ( { g_events = events; g_delivered = Net.frames_delivered net; g_wall = wall;
      g_minor_pe = per_event minor events;
      g_promoted_pe = per_event promoted events;
      g_fp = net_fp ~owns:(fun _ -> true) net },
    pool_totals pools )

let run_frames_chaos cfg ~pooled =
  let eng = Engine.create ~scheduler:`Wheel () in
  let net = build ~event_mode:`Typed cfg eng in
  let f = chaos_schedule cfg net in
  (if pooled then ignore (setup_pooled_traffic cfg ~owns:(fun _ -> true) net)
   else setup_plain_traffic cfg ~owns:(fun _ -> true) net);
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Engine.events_processed eng in
  ( { g_events = events; g_delivered = Net.frames_delivered net; g_wall = wall;
      g_minor_pe = 0.0; g_promoted_pe = 0.0;
      g_fp = net_fp ~owns:(fun _ -> true) net },
    fault_fp (Fault.stats f) )

let run_frames_parallel cfg ~shards =
  let marks = Array.make shards (0.0, 0.0) in
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~scheduler:`Wheel ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard ~owns net ->
        ignore (setup_pooled_traffic cfg ~owns net);
        marks.(shard) <- gc_mark_local ())
      ~collect:(fun ~shard ~owns net ->
        (net_fp ~owns net, gc_delta_local marks.(shard)))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let fp =
    Array.to_list parts
    |> List.concat_map fst
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let minor = Array.fold_left (fun a (_, (m, _)) -> a +. m) 0.0 parts in
  ( { g_events = stats.Parsim.events; g_delivered = stats.Parsim.delivered;
      g_wall = wall;
      g_minor_pe = per_event minor stats.Parsim.events;
      g_promoted_pe = 0.0; g_fp = fp },
    stats.Parsim.rounds )

let write_frames_json cfg ~out ~(oracle : engine_run) ~(pooled : engine_run)
    ~pool:(p_created, p_reused, p_out) ~speedup ~shards ~par_wall ~par_minor =
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 6,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"promoted_words_per_event\": %.4f,\n\
    \  \"speedup_vs_unpooled\": %.3f,\n\
    \  \"pool\": { \"created\": %d, \"reused\": %d, \"outstanding\": %d },\n\
    \  \"oracle\": { \"frames\": \"unpooled\", \"events\": %d, \"wall_s\": \
     %.6f, \"events_per_sec\": %.1f,\n\
    \              \"minor_words_per_event\": %.3f },\n\
    \  \"chaos\": { \"identical\": true },\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \
     \"speedup_vs_sequential\": %.3f, \"identical\": true },\n\
    \  \"sharded_minor_words_per_event\": %.3f,\n\
    \  \"identical\": true\n\
     }\n"
    (engine_workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    pooled.g_events pooled.g_delivered pooled.g_wall
    (float_of_int pooled.g_events /. pooled.g_wall)
    pooled.g_minor_pe pooled.g_promoted_pe speedup p_created p_reused p_out
    oracle.g_events oracle.g_wall
    (float_of_int oracle.g_events /. oracle.g_wall)
    oracle.g_minor_pe shards par_wall
    (pooled.g_wall /. par_wall)
    par_minor;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* Allocation budgets for the pooled fabric, in minor words/event.
   Measured profile (k=4 and k=8 agree): per-event allocation ramps
   with simulated time as port queues fill — once departures overlap
   (path latency ~8us vs the 6us per-host gap) frames start taking the
   queued dequeue paths — from ~3 w/ev over the first ~200 packets/host
   to a ~7.7 w/ev plateau by ~1500 packets/host. The full run measures
   the plateau; [frames_minor_budget] is that plateau plus margin. The
   smoke run (k=4, 200 packets/host, 41.6k events) ends mid-ramp and
   measures ~3.2-4.5 w/ev — the spread is one-time pool and ring growth
   landing in whichever of the two timed runs wins wall-clock — so its
   budget is *tighter* than the full one, not looser: the old +0.5
   "smoke tolerance" had the direction backwards. *)
let frames_minor_budget = 10.0
let frames_smoke_minor_budget = 6.0

let frames_bench cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 200 } else cfg
  in
  let tag = if cfg.smoke then "perf(frames smoke)" else "perf(frames)" in
  Printf.printf "%s: %s\n%!" tag (engine_workload_of cfg);
  (* Best of two runs per variant so a scheduler hiccup cannot fake (or
     hide) a regression; the runs are deterministic, so the fingerprint
     of either serves. *)
  let best_of_two run =
    let a = run () in
    let b = run () in
    if (fst b).g_wall < (fst a).g_wall then b else a
  in
  let oracle, _ = best_of_two (fun () -> run_frames_fabric cfg ~pooled:false) in
  let pooled, (p_created, p_reused, p_out) =
    best_of_two (fun () -> run_frames_fabric cfg ~pooled:true)
  in
  let check label (a : engine_run) (b : engine_run) =
    if a.g_events <> b.g_events || a.g_delivered <> b.g_delivered then begin
      Printf.eprintf
        "%s: FAIL — %s diverged from the unpooled oracle (%d/%d events, \
         %d/%d delivered)\n"
        tag label a.g_events b.g_events a.g_delivered b.g_delivered;
      exit 1
    end;
    if a.g_fp <> b.g_fp then begin
      Printf.eprintf
        "%s: FAIL — %s: switch register fingerprints differ\n" tag label;
      exit 1
    end
  in
  check "pooled plain run" oracle pooled;
  let fab name (r : engine_run) =
    Printf.printf
      "%s: fabric %-9s %d events, %d delivered in %.3fs (%.3e ev/s, %.2f \
       minor w/ev)\n%!"
      tag name r.g_events r.g_delivered r.g_wall
      (float_of_int r.g_events /. r.g_wall)
      r.g_minor_pe
  in
  fab "unpooled" oracle;
  fab "pooled" pooled;
  Printf.printf "%s: pool %d created / %d reused, %d outstanding at end\n%!" tag
    p_created p_reused p_out;
  (* The allocation gate: the whole pooled dataplane, not just the
     event core, within budget. See the budget constants above for why
     the smoke bound is the tighter one. *)
  let budget =
    if cfg.smoke then frames_smoke_minor_budget else frames_minor_budget
  in
  if pooled.g_minor_pe > budget then begin
    Printf.eprintf
      "%s: FAIL — pooled run allocates %.2f minor words/event (budget %.1f)\n"
      tag pooled.g_minor_pe budget;
    exit 1
  end;
  (* Chaos identity: the full BENCH_4 fault schedule, pooled vs
     unpooled, sequentially under the wheel. *)
  let chaos_oracle, chaos_oracle_faults = run_frames_chaos cfg ~pooled:false in
  let chaos_pooled, chaos_pooled_faults = run_frames_chaos cfg ~pooled:true in
  check "pooled chaotic run" chaos_oracle chaos_pooled;
  if chaos_oracle_faults <> chaos_pooled_faults then begin
    Printf.eprintf
      "%s: FAIL — pooled chaotic run's fault counts diverged ([%s] vs [%s])\n"
      tag
      (String.concat ";" (List.map string_of_int chaos_oracle_faults))
      (String.concat ";" (List.map string_of_int chaos_pooled_faults));
    exit 1
  end;
  Printf.printf
    "%s: chaos %d events, %d delivered — pooled identical to unpooled\n%!" tag
    chaos_pooled.g_events chaos_pooled.g_delivered;
  (* Sharded identity: pooled frames under the parallel scheduler must
     reproduce the sequential oracle's registers exactly (cross-shard
     recycles are no-ops by the pool's domain-ownership rule). *)
  let shards =
    if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4
  in
  let par, rounds = run_frames_parallel cfg ~shards in
  check (Printf.sprintf "pooled %d-shard run" shards) oracle par;
  Printf.printf
    "%s: %d-shard pooled run identical to sequential (%.3fs, %d rounds, %.2f \
     minor w/ev)\n%!"
    tag shards par.g_wall rounds par.g_minor_pe;
  let speedup = oracle.g_wall /. pooled.g_wall in
  Printf.printf "%s: pooled speedup over unpooled: %.2fx\n%!" tag speedup;
  Printf.printf
    "%s: OK — pooled flat frames bit-identical to the unpooled oracle \
     (plain, chaos, %d-shard)\n%!"
    tag shards;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_6.json" in
    write_frames_json cfg ~out ~oracle ~pooled
      ~pool:(p_created, p_reused, p_out) ~speedup ~shards ~par_wall:par.g_wall
      ~par_minor:par.g_minor_pe;
    let eps = float_of_int pooled.g_events /. pooled.g_wall in
    if eps < 2.4e6 then
      Printf.printf
        "%s: WARNING — %.3e events/sec below the 2.4e6 target on this \
         machine\n%!"
        tag eps
  end

(* ---- sharded workload (BENCH_2): the multicore gate ----------------

   The flat-boundary parallel engine measured against the sequential
   engine on the BENCH_6 pooled-frame workload (wheel scheduler, typed
   events on both sides — the deltas here are sharding and the
   boundary protocol, nothing else). Three hard gates and one
   conditional:

   1. Bit identity: events, deliveries and every switch register must
      match the sequential run exactly.
   2. Allocation: sharded minor words/event <= 2x sequential — the
      boundary path (chunk blits, in-place inbox merge, receiver-side
      pool materialization) must not reintroduce per-message garbage.
   3. Pool conservation: every traffic-pool frame and every boundary
      frame is back in its pool at the horizon (outstanding = 0) —
      the cross-domain leak stays fixed.
   4. Speedup (conditional): >= 2x events/sec over sequential at
      4+ shards, asserted only when the machine has >= 4 cores;
      otherwise skipped loudly, with the provenance recorded in
      BENCH_2.json so a reader knows the number was not checked.

   A k=16 row (reduced packet count) rides along to show the
   bigger-fabric trajectory the ROADMAP's k=16/k=32 target needs. *)

let speedup_gate_min_cores = 4
let speedup_target = 2.0

(* Pooled traffic under Parsim, collecting per-shard register
   fingerprints, GC deltas and traffic-pool totals. *)
let run_shards cfg ~shards =
  let marks = Array.make shards (0.0, 0.0) in
  let pools = Array.make shards [||] in
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~scheduler:`Wheel ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard ~owns net ->
        pools.(shard) <- setup_pooled_traffic cfg ~owns net;
        marks.(shard) <- gc_mark_local ())
      ~collect:(fun ~shard ~owns net ->
        (net_fp ~owns net, gc_delta_local marks.(shard),
         pool_totals pools.(shard)))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let fp =
    Array.to_list parts
    |> List.concat_map (fun (fp, _, _) -> fp)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let minor = Array.fold_left (fun a (_, (m, _), _) -> a +. m) 0.0 parts in
  let pool =
    Array.fold_left
      (fun (c, r, o) (_, _, (pc, pr, po)) -> (c + pc, r + pr, o + po))
      (0, 0, 0) parts
  in
  ( { g_events = stats.Parsim.events; g_delivered = stats.Parsim.delivered;
      g_wall = wall;
      g_minor_pe = per_event minor stats.Parsim.events;
      g_promoted_pe = 0.0; g_fp = fp },
    stats, pool )

let write_shards_json cfg ~out ~(seq : engine_run) ~(par : engine_run)
    ~(stats : Parsim.stats) ~pool:(p_created, p_reused, p_out) ~speedup
    ~gate_enforced ~gate_reason ~k16 =
  let cores = Domain.recommended_domain_count () in
  let k16_cfg, (k16_seq : engine_run), (k16_par : engine_run), k16_speedup =
    k16
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 2,\n\
    \  \"workload\": \"%s\",\n\
    \  \"shards\": %d,\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"boundary_messages\": %d,\n\
    \  \"boundary_chunks\": %d,\n\
    \  \"cut_links\": %d,\n\
    \  \"lookahead_ns\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"sharded_minor_words_per_event\": %.3f,\n\
    \  \"speedup_vs_sequential\": %.3f,\n\
    \  \"sequential\": { \"wall_s\": %.6f, \"events_per_sec\": %.1f, \
     \"minor_words_per_event\": %.3f },\n\
    \  \"pool\": { \"created\": %d, \"reused\": %d, \"outstanding\": %d },\n\
    \  \"boundary_outstanding\": %d,\n\
    \  \"speedup_gate\": { \"target\": %.1f, \"enforced\": %s, \"reason\": \
     \"%s\" },\n\
    \  \"k16\": { \"workload\": \"%s\", \"events\": %d, \"wall_s\": %.6f, \
     \"events_per_sec\": %.1f,\n\
    \            \"sequential_wall_s\": %.6f, \"speedup_vs_sequential\": \
     %.3f, \"identical\": true },\n\
    \  \"identical\": true\n\
     }\n"
    (engine_workload_of cfg) stats.Parsim.shards (git_commit ())
    Sys.ocaml_version cores par.g_events par.g_delivered stats.Parsim.rounds
    stats.Parsim.messages stats.Parsim.chunks stats.Parsim.cut_links
    stats.Parsim.lookahead par.g_wall
    (float_of_int par.g_events /. par.g_wall)
    par.g_minor_pe par.g_minor_pe speedup seq.g_wall
    (float_of_int seq.g_events /. seq.g_wall)
    seq.g_minor_pe p_created p_reused p_out stats.Parsim.boundary_outstanding
    speedup_target
    (if gate_enforced then "true" else "false")
    gate_reason
    (engine_workload_of k16_cfg)
    k16_par.g_events k16_par.g_wall
    (float_of_int k16_par.g_events /. k16_par.g_wall)
    k16_seq.g_wall k16_speedup;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

let shards_bench cfg =
  let shards = cfg.shards in
  let cores = Domain.recommended_domain_count () in
  let tag = "perf(shards)" in
  Printf.printf "%s: %s — %d shards on %d core(s)\n%!" tag
    (engine_workload_of cfg) shards cores;
  let check label (seq : engine_run) (par : engine_run) =
    if seq.g_events <> par.g_events || seq.g_delivered <> par.g_delivered
    then begin
      Printf.eprintf
        "%s: FAIL — %s diverged from sequential (%d vs %d events, %d vs %d \
         delivered)\n"
        tag label par.g_events seq.g_events par.g_delivered seq.g_delivered;
      exit 1
    end;
    if seq.g_fp <> par.g_fp then begin
      Printf.eprintf
        "%s: FAIL — %s: switch register fingerprints differ from sequential\n"
        tag label;
      exit 1
    end
  in
  let best_of_two run =
    let a = run () in
    let b = run () in
    if (fst b).g_wall < (fst a).g_wall then b else a
  in
  (* Sequential baseline: same pooled workload, same scheduler. *)
  let seq, _ = best_of_two (fun () -> run_frames_fabric cfg ~pooled:true) in
  let par, stats, (p_created, p_reused, p_out) = run_shards cfg ~shards in
  check (Printf.sprintf "%d-shard run" shards) seq par;
  Printf.printf
    "%s: sequential %d events in %.3fs (%.3e ev/s, %.2f minor w/ev)\n\
     %s: %d-shard   %d events in %.3fs (%.3e ev/s, %.2f minor w/ev)\n\
     %s: %d rounds, %d boundary frames in %d chunks over %d cut links, \
     lookahead %dns\n%!"
    tag seq.g_events seq.g_wall
    (float_of_int seq.g_events /. seq.g_wall)
    seq.g_minor_pe tag shards par.g_events par.g_wall
    (float_of_int par.g_events /. par.g_wall)
    par.g_minor_pe tag stats.Parsim.rounds stats.Parsim.messages
    stats.Parsim.chunks stats.Parsim.cut_links stats.Parsim.lookahead;
  (* Pool conservation: traffic pools and boundary pools both drain. *)
  Printf.printf "%s: pool %d created / %d reused, %d outstanding, %d \
                 boundary outstanding\n%!"
    tag p_created p_reused p_out stats.Parsim.boundary_outstanding;
  if p_out <> 0 || stats.Parsim.boundary_outstanding <> 0 then begin
    Printf.eprintf
      "%s: FAIL — %d traffic-pool and %d boundary frames never returned to \
       their pools\n"
      tag p_out stats.Parsim.boundary_outstanding;
    exit 1
  end;
  (* Allocation gate: the boundary path must stay flat. *)
  if par.g_minor_pe > 2.0 *. seq.g_minor_pe then begin
    Printf.eprintf
      "%s: FAIL — sharded run allocates %.2f minor words/event, over 2x the \
       sequential %.2f\n"
      tag par.g_minor_pe seq.g_minor_pe;
    exit 1
  end;
  let speedup = seq.g_wall /. par.g_wall in
  Printf.printf "%s: speedup over sequential: %.2fx\n%!" tag speedup;
  (* Speedup gate, behind the core-count probe: a 1-2 core machine
     cannot speed anything up, so asserting there would only test the
     scheduler's mercy. The skip is loud and lands in the JSON. *)
  let gate_enforced = cores >= speedup_gate_min_cores && shards >= 4 in
  let gate_reason =
    if gate_enforced then
      Printf.sprintf "checked: %d cores >= %d, %d shards" cores
        speedup_gate_min_cores shards
    else if cores < speedup_gate_min_cores then
      Printf.sprintf "skipped: only %d core(s) < %d" cores
        speedup_gate_min_cores
    else Printf.sprintf "skipped: only %d shard(s) < 4" shards
  in
  if gate_enforced then begin
    if speedup < speedup_target then begin
      Printf.eprintf
        "%s: FAIL — speedup %.2fx below the %.1fx target (%d shards, %d \
         cores)\n"
        tag speedup speedup_target shards cores;
      exit 1
    end;
    Printf.printf "%s: speedup gate passed (%.2fx >= %.1fx)\n%!" tag speedup
      speedup_target
  end
  else
    Printf.printf
      "%s: SKIPPED speedup gate — %s (recorded in BENCH_2.json)\n%!" tag
      gate_reason;
  (* k=16 trajectory row: the fabric the ROADMAP's north star needs,
     at a packet count that keeps the row affordable. Identity is
     checked here too — a bigger fabric that silently diverged would
     be worse than no row. *)
  let k16_cfg =
    { cfg with k = 16; packets_per_host = min cfg.packets_per_host 50 }
  in
  Printf.printf "%s: k=16 row — %s\n%!" tag (engine_workload_of k16_cfg);
  let k16_seq, _ = run_frames_fabric k16_cfg ~pooled:true in
  let k16_par, k16_stats, (_, _, k16_p_out) = run_shards k16_cfg ~shards in
  check "k=16 run" k16_seq k16_par;
  if k16_p_out <> 0 || k16_stats.Parsim.boundary_outstanding <> 0 then begin
    Printf.eprintf
      "%s: FAIL — k=16: %d traffic-pool and %d boundary frames leaked\n" tag
      k16_p_out k16_stats.Parsim.boundary_outstanding;
    exit 1
  end;
  let k16_speedup = k16_seq.g_wall /. k16_par.g_wall in
  Printf.printf
    "%s: k=16 sequential %.3fs, %d-shard %.3fs (%.2fx, %d rounds) — \
     identical\n%!"
    tag k16_seq.g_wall shards k16_par.g_wall k16_speedup k16_stats.Parsim.rounds;
  Printf.printf
    "%s: OK — %d-shard runs bit-identical to sequential, pools drained\n%!"
    tag shards;
  let out = match cfg.out with Some o -> o | None -> "BENCH_2.json" in
  write_shards_json cfg ~out ~seq ~par ~stats
    ~pool:(p_created, p_reused, p_out) ~speedup ~gate_enforced ~gate_reason
    ~k16:(k16_cfg, k16_seq, k16_par, k16_speedup)

(* ---- telemetry workload (BENCH_7): the streaming-telemetry gate -----

   Four properties lib/telemetry must hold, each checked against an
   exact oracle or a bit-identity witness:

   1. Ingest throughput. The emit -> chunk -> drain -> collector
      pipeline must sustain >= 1e6 postcards/sec (hard gate) while
      recirculating its fixed chunk pool — no drops, no growth.

   2. Bounded memory. The sink never holds more than
      max_chunks * chunk_bytes even when the producer outruns the
      collector: overflow cannibalises the oldest chunk, and the
      accounting stays exact (drained = emitted - dropped).

   3. Sketch error bounds. CMS point queries never underestimate and
      stay within epsilon * total of an exact hashtable oracle; a
      4-way-split merged CMS is bit-identical to the single-stream
      sketch (merge is elementwise sum). t-digest quantiles stay
      inside the k1 cluster-width rank bound of the exact sorted
      oracle — 2x for a merged digest, whose clusters may coarsen
      once — and the centroid count stays under its cap.

   4. Fabric identity. The BENCH_5 plain-traffic fabric with binary
      switch taps and a periodically absorbing collector, run
      sequentially and sharded, must agree on total cards and on the
      collector's order-independent fingerprint bit-for-bit. *)

(* Ingest microbench: synthetic hop cards through a default sink into
   a collector that drains every ~8k cards, i.e. always keeps up. The
   max byte footprint observed across rotations is the bounded-memory
   witness on the fast path. *)
let telemetry_cards_per_chunk = 1024
let telemetry_max_chunks = 64

let telemetry_ingest ~cards =
  let sink =
    Telemetry_sink.create ~cards_per_chunk:telemetry_cards_per_chunk
      ~max_chunks:telemetry_max_chunks ()
  in
  let col = Collector.create () in
  let max_bytes = ref 0 in
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to cards - 1 do
    Telemetry_sink.emit_hop sink ~now:(i * 50) ~switch_id:(i land 63)
      ~in_port:(i land 3) ~out_port:((i lsr 2) land 3)
      ~queue_bytes:(i land 0xFFFF) ~version:1 ~frame_id:i
      ~flow_hash:(i land 1023) ~wire_bytes:1000 ~entry:1;
    if i land 0x1FFF = 0x1FFF then begin
      let b = Telemetry_sink.card_bytes_alive sink in
      if b > !max_bytes then max_bytes := b;
      Collector.absorb col sink
    end
  done;
  Collector.absorb col sink;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, _ = gc_delta g0 in
  (col, sink, wall, minor /. float_of_int cards, !max_bytes)

(* Overload: a small sink fed 10x its capacity with no drain at all.
   Memory must stay at the cap and every offered card must end up
   either drained or counted dropped. *)
let telemetry_overload () =
  let cards_per_chunk = 256 and max_chunks = 8 in
  let sink = Telemetry_sink.create ~cards_per_chunk ~max_chunks () in
  let cap = max_chunks * cards_per_chunk * Telemetry_wire.bytes_per_card in
  let offered = 10 * max_chunks * cards_per_chunk in
  for i = 0 to offered - 1 do
    Telemetry_sink.emit_hop sink ~now:i ~switch_id:0 ~in_port:0 ~out_port:0
      ~queue_bytes:0 ~version:1 ~frame_id:i ~flow_hash:0 ~wire_bytes:64
      ~entry:0
  done;
  let held = Telemetry_sink.card_bytes_alive sink in
  let drained = ref 0 in
  Telemetry_sink.drain sink (fun _ ~off:_ -> incr drained);
  (cap, held, offered, Telemetry_sink.dropped sink, !drained)

type sketch_report = {
  sk_samples : int;
  cms_total : int;
  cms_bound : int;        (* ceil (epsilon * total) *)
  cms_max_over : int;
  cms_under : int;        (* keys estimated below exact: must be 0 *)
  cms_viol : int;         (* keys overestimated past the bound *)
  cms_merged_equal : bool;
  td_centroids : int;
  td_max_err : float;     (* max rank error over the probed quantiles *)
  td_max_ratio : float;   (* max err / per-quantile bound *)
  td_merged_max_err : float;
  td_merged_max_ratio : float;  (* vs 2x the per-quantile bound *)
}

let telemetry_quantiles = [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

(* k1-scale cluster width in q-space at q: a merging digest's cluster
   spans at most dq where k(q+dq) - k(q) = 1, and k'(q) =
   delta / (2 pi sqrt (q (1-q))), so dq <= 2 pi sqrt (q (1-q)) / delta.
   Interpolation across one cluster cannot miss the true rank by more
   than that (plus the 1/n discretisation of the oracle itself). *)
let td_delta = 100.0

let td_rank_bound ~n q =
  (2.0 *. Float.pi /. td_delta *. sqrt (q *. (1.0 -. q)))
  +. (1.0 /. float_of_int n)

let telemetry_sketches ~samples =
  let rng = Rng.create ~seed:chaos_seed in
  (* Count-min vs an exact hashtable. min-of-two-uniforms skews the
     key distribution so the stream has genuine heavy hitters. *)
  let keys = 4096 in
  let cms = Sketch.Cms.create () in
  let shard_cms = Array.init 4 (fun _ -> Sketch.Cms.create ()) in
  let exact = Hashtbl.create keys in
  for i = 0 to samples - 1 do
    let key = min (Rng.int rng keys) (Rng.int rng keys) in
    let w = 64 + Rng.int rng 1400 in
    Sketch.Cms.add cms ~key w;
    Sketch.Cms.add shard_cms.(i land 3) ~key w;
    Hashtbl.replace exact key
      (w + Option.value ~default:0 (Hashtbl.find_opt exact key))
  done;
  let total = Sketch.Cms.total cms in
  let bound =
    int_of_float (Float.ceil (Sketch.Cms.epsilon cms *. float_of_int total))
  in
  let max_over = ref 0 and under = ref 0 and viol = ref 0 in
  Hashtbl.iter
    (fun key exact_v ->
      let est = Sketch.Cms.estimate cms ~key in
      if est < exact_v then incr under;
      let over = est - exact_v in
      if over > !max_over then max_over := over;
      if over > bound then incr viol)
    exact;
  let merged = Sketch.Cms.create () in
  Array.iter (fun s -> Sketch.Cms.merge ~into:merged s) shard_cms;
  let merged_equal = Sketch.Cms.equal cms merged in
  (* The heaviest exact key must surface through the candidate API:
     estimates never underestimate, so threshold = its exact count. *)
  let top_key, top_count =
    Hashtbl.fold
      (fun k v ((_, bv) as best) -> if v > bv then (k, v) else best)
      exact (-1, min_int)
  in
  let hh =
    Sketch.Cms.heavy_hitters cms
      ~candidates:(List.init keys (fun k -> k))
      ~threshold:top_count
  in
  if not (List.mem_assoc top_key hh) then begin
    Printf.eprintf
      "perf(telemetry): FAIL — exact-heaviest key %d missing from \
       heavy_hitters\n"
      top_key;
    exit 1
  end;
  (* t-digest vs the exact sorted sample. Rank error: where the
     digest's answer really falls in the data, against the q asked. *)
  let td = Sketch.Tdigest.create ~delta:td_delta () in
  let shard_td = Array.init 4 (fun _ -> Sketch.Tdigest.create ~delta:td_delta ()) in
  let vals =
    Array.init samples (fun _ -> Rng.exponential rng ~mean:250.0)
  in
  Array.iteri
    (fun i v ->
      Sketch.Tdigest.add td v;
      Sketch.Tdigest.add shard_td.(i land 3) v)
    vals;
  Array.sort compare vals;
  let rank_of v =
    let lo = ref 0 and hi = ref samples in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if vals.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. float_of_int samples
  in
  let merged_td = Sketch.Tdigest.create ~delta:td_delta () in
  Array.iter (fun s -> Sketch.Tdigest.merge ~into:merged_td s) shard_td;
  let max_err = ref 0.0 and max_ratio = ref 0.0 in
  let m_max_err = ref 0.0 and m_max_ratio = ref 0.0 in
  List.iter
    (fun q ->
      let b = td_rank_bound ~n:samples q in
      let err = Float.abs (rank_of (Sketch.Tdigest.quantile td q) -. q) in
      if err > !max_err then max_err := err;
      if err /. b > !max_ratio then max_ratio := err /. b;
      let merr =
        Float.abs (rank_of (Sketch.Tdigest.quantile merged_td q) -. q)
      in
      if merr > !m_max_err then m_max_err := merr;
      if merr /. (2.0 *. b) > !m_max_ratio then
        m_max_ratio := merr /. (2.0 *. b))
    telemetry_quantiles;
  {
    sk_samples = samples;
    cms_total = total;
    cms_bound = bound;
    cms_max_over = !max_over;
    cms_under = !under;
    cms_viol = !viol;
    cms_merged_equal = merged_equal;
    td_centroids = Sketch.Tdigest.centroids td;
    td_max_err = !max_err;
    td_max_ratio = !max_ratio;
    td_merged_max_err = !m_max_err;
    td_merged_max_ratio = !m_max_ratio;
  }

(* Fabric runs: BENCH_5's plain traffic under the wheel scheduler with
   a binary tap on every switch, the collector absorbing every 50us of
   simulated time — a real control-loop cadence, and frequent enough
   that the default sink never drops. The horizon hugs the traffic
   span so the absorb ticks stop when the fabric does. *)
let telemetry_absorb_period = Time_ns.us 50

let telemetry_until cfg = (cfg.packets_per_host * cfg.gap_ns) + Time_ns.ms 10

let run_telemetry_fabric cfg =
  let eng = Engine.create ~scheduler:`Wheel () in
  let net = build ~event_mode:`Typed cfg eng in
  let sink = Telemetry_sink.create () in
  let col = Collector.create () in
  Telemetry_emit.tap_switches sink net;
  setup_plain_traffic cfg ~owns:(fun _ -> true) net;
  let until = telemetry_until cfg in
  Engine.every eng ~period:telemetry_absorb_period ~until (fun () ->
      Collector.absorb col sink);
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until;
  let wall = Unix.gettimeofday () -. t0 in
  Collector.absorb col sink;
  ( col,
    Telemetry_sink.dropped sink,
    Engine.events_processed eng,
    Net.frames_delivered net,
    wall )

(* Each shard taps every switch of its own topology copy, but only
   owned switches ever process frames (boundary frames are shipped to
   their owning shard), so each hop cards exactly once fabric-wide and
   merging the shard collectors reproduces the sequential stream. *)
let run_telemetry_parallel cfg ~shards =
  let sinks = Array.make shards None in
  let cols = Array.make shards None in
  let until = telemetry_until cfg in
  let t0 = Unix.gettimeofday () in
  let stats, parts =
    Parsim.run ~scheduler:`Wheel ~shards ~until
      ~build:(build ~event_mode:`Typed cfg)
      ~setup:(fun ~shard ~owns net ->
        let sink = Telemetry_sink.create () in
        let col = Collector.create () in
        Telemetry_emit.tap_switches sink net;
        setup_plain_traffic cfg ~owns net;
        Engine.every (Net.engine net) ~period:telemetry_absorb_period ~until
          (fun () -> Collector.absorb col sink);
        sinks.(shard) <- Some sink;
        cols.(shard) <- Some col)
      ~collect:(fun ~shard ~owns:_ _ ->
        let sink = Option.get sinks.(shard) in
        let col = Option.get cols.(shard) in
        Collector.absorb col sink;
        (col, Telemetry_sink.dropped sink))
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let merged = Collector.create () in
  Array.iter (fun (col, _) -> Collector.merge ~into:merged col) parts;
  let dropped = Array.fold_left (fun a (_, d) -> a + d) 0 parts in
  (merged, dropped, stats.Parsim.delivered, wall)

let telemetry_workload_of cfg =
  Printf.sprintf "%s, binary tap on every switch, 50us collector windows"
    (engine_workload_of cfg)

let write_telemetry_json cfg ~out ~ingest_cards ~ingest_wall ~ingest_minor
    ~ingest_max_bytes ~sink_cap ~(sk : sketch_report) ~fab_cards ~fab_events
    ~fab_delivered ~fab_wall ~fingerprint ~shards ~par_wall =
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 7,\n\
    \  \"workload\": \"%s\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"ingest\": { \"cards\": %d, \"wall_s\": %.6f, \"cards_per_sec\": \
     %.1f,\n\
    \              \"minor_words_per_card\": %.3f, \"max_sink_bytes\": %d, \
     \"sink_cap_bytes\": %d },\n\
    \  \"sketch\": { \"samples\": %d,\n\
    \              \"cms\": { \"total\": %d, \"bound\": %d, \
     \"max_overestimate\": %d, \"underestimates\": %d, \"violations\": %d, \
     \"merged_identical\": %b },\n\
    \              \"tdigest\": { \"delta\": %.0f, \"centroids\": %d, \
     \"max_rank_error\": %.5f, \"max_error_over_bound\": %.3f, \
     \"merged_max_rank_error\": %.5f } },\n\
    \  \"fabric\": { \"events\": %d, \"cards\": %d, \"cards_dropped\": 0, \
     \"packets_delivered\": %d,\n\
    \              \"wall_s\": %.6f, \"cards_per_sec\": %.1f, \
     \"collector_fingerprint\": %d },\n\
    \  \"sharded\": { \"shards\": %d, \"wall_s\": %.6f, \"identical\": true }\n\
     }\n"
    (telemetry_workload_of cfg) (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    ingest_cards ingest_wall
    (float_of_int ingest_cards /. ingest_wall)
    ingest_minor ingest_max_bytes sink_cap sk.sk_samples sk.cms_total
    sk.cms_bound sk.cms_max_over sk.cms_under sk.cms_viol sk.cms_merged_equal
    td_delta sk.td_centroids sk.td_max_err sk.td_max_ratio
    sk.td_merged_max_err fab_events fab_cards fab_delivered fab_wall
    (float_of_int fab_cards /. fab_wall)
    fingerprint shards par_wall;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

let telemetry_bench cfg =
  let cfg =
    if cfg.smoke then { cfg with k = 4; packets_per_host = 200 } else cfg
  in
  let tag = if cfg.smoke then "perf(telemetry smoke)" else "perf(telemetry)" in
  Printf.printf "%s: %s\n%!" tag (telemetry_workload_of cfg);
  (* 1. Ingest throughput, best of two so a hiccup cannot fake a miss. *)
  let ingest_cards = if cfg.smoke then 1_000_000 else 8_000_000 in
  let run_ingest () = telemetry_ingest ~cards:ingest_cards in
  let ((icol, isink, iwall, iminor, imax_bytes) as _a) =
    let a = run_ingest () in
    let b = run_ingest () in
    let wall_of (_, _, w, _, _) = w in
    if wall_of b < wall_of a then b else a
  in
  let sink_cap =
    telemetry_max_chunks * telemetry_cards_per_chunk
    * Telemetry_wire.bytes_per_card
  in
  let rate = float_of_int ingest_cards /. iwall in
  Printf.printf
    "%s: ingest %d cards in %.3fs (%.3e cards/s, %.3f minor w/card, sink <= \
     %d bytes)\n%!"
    tag ingest_cards iwall rate iminor imax_bytes;
  if Collector.cards icol <> ingest_cards || Telemetry_sink.dropped isink <> 0
  then begin
    Printf.eprintf
      "%s: FAIL — ingest lost cards (%d collected of %d, %d dropped)\n" tag
      (Collector.cards icol) ingest_cards
      (Telemetry_sink.dropped isink);
    exit 1
  end;
  if imax_bytes > sink_cap then begin
    Printf.eprintf
      "%s: FAIL — sink footprint %d bytes exceeds its %d-byte cap\n" tag
      imax_bytes sink_cap;
    exit 1
  end;
  if rate < 1e6 then begin
    Printf.eprintf
      "%s: FAIL — %.3e cards/sec below the 1e6 sustained target\n" tag rate;
    exit 1
  end;
  (* 2. Bounded memory under overload. *)
  let cap, held, offered, dropped, drained = telemetry_overload () in
  Printf.printf
    "%s: overload %d offered into an 8-chunk sink: %d drained + %d dropped, \
     %d bytes held (cap %d)\n%!"
    tag offered drained dropped held cap;
  if held > cap || dropped = 0 || drained + dropped <> offered then begin
    Printf.eprintf
      "%s: FAIL — overloaded sink broke its bound or its accounting\n" tag;
    exit 1
  end;
  (* 3. Sketches vs exact oracles. *)
  let sk = telemetry_sketches ~samples:(if cfg.smoke then 50_000 else 200_000) in
  Printf.printf
    "%s: cms %d samples, max overestimate %d (bound %d), %d underestimates, \
     merged shards %s\n%!"
    tag sk.sk_samples sk.cms_max_over sk.cms_bound sk.cms_under
    (if sk.cms_merged_equal then "identical" else "DIVERGED");
  if sk.cms_under > 0 || sk.cms_viol > 0 || not sk.cms_merged_equal then begin
    Printf.eprintf
      "%s: FAIL — cms outside its bound (%d underestimates, %d violations, \
       merged_equal=%b)\n"
      tag sk.cms_under sk.cms_viol sk.cms_merged_equal;
    exit 1
  end;
  Printf.printf
    "%s: t-digest %d centroids, max rank error %.5f (%.2f of bound), merged \
     %.5f (%.2f of 2x bound)\n%!"
    tag sk.td_centroids sk.td_max_err sk.td_max_ratio sk.td_merged_max_err
    sk.td_merged_max_ratio;
  if
    sk.td_max_ratio > 1.0 || sk.td_merged_max_ratio > 1.0
    || sk.td_centroids > int_of_float (2.0 *. td_delta) + 8
  then begin
    Printf.eprintf
      "%s: FAIL — t-digest outside the k1 rank bound (or over its centroid \
       cap: %d)\n"
      tag sk.td_centroids;
    exit 1
  end;
  (* 4. Fabric: sequential vs sharded collector identity. *)
  let col, fab_dropped, fab_events, fab_delivered, fab_wall =
    run_telemetry_fabric cfg
  in
  let fab_cards = Collector.cards col in
  Printf.printf
    "%s: fabric %d events, %d cards (%d dropped), %d delivered in %.3fs \
     (%.3e cards/s)\n%!"
    tag fab_events fab_cards fab_dropped fab_delivered fab_wall
    (float_of_int fab_cards /. fab_wall);
  if fab_dropped <> 0 then begin
    Printf.eprintf
      "%s: FAIL — fabric run dropped %d cards (collector fell behind)\n" tag
      fab_dropped;
    exit 1
  end;
  let shards =
    if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4
  in
  let par_col, par_dropped, par_delivered, par_wall =
    run_telemetry_parallel cfg ~shards
  in
  if
    par_dropped <> 0
    || Collector.cards par_col <> fab_cards
    || par_delivered <> fab_delivered
    || Collector.fingerprint par_col <> Collector.fingerprint col
  then begin
    Printf.eprintf
      "%s: FAIL — %d-shard telemetry diverged from sequential\n\
       %s:   cards %d vs %d (%d dropped), delivered %d vs %d, fingerprint \
       %d vs %d\n"
      tag shards tag
      (Collector.cards par_col)
      fab_cards par_dropped par_delivered fab_delivered
      (Collector.fingerprint par_col)
      (Collector.fingerprint col);
    exit 1
  end;
  Printf.printf
    "%s: %d-shard fabric %.3fs — merged collector identical to sequential \
     (fingerprint %d)\n%!"
    tag shards par_wall
    (Collector.fingerprint col);
  Printf.printf
    "%s: OK — 1e6+ cards/s sustained, memory bounded, sketches inside their \
     bounds, %d-shard identical\n%!"
    tag shards;
  if not cfg.smoke then begin
    let out = match cfg.out with Some o -> o | None -> "BENCH_7.json" in
    write_telemetry_json cfg ~out ~ingest_cards ~ingest_wall:iwall
      ~ingest_minor:iminor ~ingest_max_bytes:imax_bytes ~sink_cap ~sk
      ~fab_cards ~fab_events ~fab_delivered ~fab_wall
      ~fingerprint:(Collector.fingerprint col) ~shards ~par_wall
  end

(* ---- transports workload (BENCH_8): the five-way FCT gate -----------

   The same pre-drawn Poisson/Pareto workload crosses a k=4 fat-tree
   under five transports (Fct.fabric_run): RCP* (TPPs), TCP Reno, DCTCP,
   NDP (pull/trim) and TPP-LB (AIMD plus CONGA-style flowlet steering
   from TPP path probes). Four gates:

   1. NDP's 99th-percentile short-flow FCT beats TCP's at the 60%-load
      point — the receiver-driven transport's whole reason to exist.
   2. Every transport produces a bit-identical outcome fingerprint
      sequentially and under the sharded scheduler.
   3. Under a chaotic drop schedule on every access link, NDP still
      completes 100% of started messages with its state-machine
      invariants intact.
   4. The trim-to-header hot path allocates at most 2 minor words per
      frame more than the plain drop path it replaces (the BENCH_6
      flat-frame discipline: trim is an in-place length patch). *)

let transports_gate_load = 0.6
let transports_chaos_drop = 0.01
let transports_trim_budget = 2.0

let transports_params cfg ~load ~chaos =
  {
    Fct.fabric_default with
    Fct.f_load = load;
    f_duration = (if cfg.smoke then Time_ns.ms 80 else Time_ns.ms 300);
    f_chaos_drop = (if chaos then transports_chaos_drop else 0.0);
  }

(* Trim-vs-drop allocation micro-gate, engine-free: one switch whose
   data subqueue is too small for any data frame, so every ingress
   takes the overflow branch — trimmed onto the priority queue when
   trimming is on, dropped when off. Pooled frames; the measured delta
   is exactly what the trim branch itself allocates. *)
let trim_microbench ~trim ~iters =
  let dst_ip = Ipv4.Addr.of_host_id 2 in
  let sw = Switch.create ~id:1 ~num_ports:2 () in
  Switch.install_route sw (Ipv4.Prefix.host dst_ip) ~port:1 ~entry_id:1
    ~version:1;
  Switch.configure_queues sw ~port:1 ~count:2;
  Switch.set_subqueue_limit sw ~port:1 ~queue:0 ~bytes:512;
  Switch.set_subqueue_limit sw ~port:1 ~queue:1 ~bytes:1_000_000;
  if trim then Switch.set_trim_keep sw ~keep:28;
  let pool = Frame.Pool.create ~capacity:4 () in
  let payload = Bytes.make 1000 'x' in
  (* The unboxed dequeue, as the simulator drives it: with the option
     API the gate would measure its own [Some] box, not the switch. *)
  let none = Frame.placeholder () in
  let one now =
    let f =
      Frame.Pool.udp_frame pool ~src_mac:(Mac.of_host_id 1)
        ~dst_mac:(Mac.of_host_id 2) ~src_ip:(Ipv4.Addr.of_host_id 1)
        ~dst_ip ~src_port:5 ~dst_port:6 ~payload ()
    in
    match Switch.handle_ingress sw ~now ~in_port:0 f with
    | Switch.Queued _ ->
      let g = Switch.dequeue_or sw ~port:1 ~default:none in
      if g != none then Frame.recycle g
    | Switch.Dropped _ -> Frame.recycle f
  in
  (* Warm the pool and the priority ring before measuring. *)
  for i = 0 to 99 do
    one i
  done;
  let g0 = gc_mark () in
  for i = 0 to iters - 1 do
    one (100 + i)
  done;
  let minor, _ = gc_delta g0 in
  (Switch.trims sw, minor /. float_of_int iters)

(* Completed/started drain fraction of a fabric run. FCT percentiles
   only cover completed flows, so a transport that drains much less
   than its peers is reporting survivor-biased latency — worth a loud
   flag on every row, not just a number in the JSON. *)
let drain_frac (o : Fct.fabric_outcome) =
  if o.Fct.fo_started = 0 then 1.0
  else float_of_int o.Fct.fo_completed /. float_of_int o.Fct.fo_started

let transports_drain_warn_frac = 0.9

let transports_row_json (o : Fct.fabric_outcome) ~load ~wall =
  let s =
    Fct.summarize
      (Fct.short_samples o ~threshold:Fct.fabric_default.Fct.f_short_bytes)
  in
  let l =
    Fct.summarize
      (List.filter
         (fun (size, _) -> size > Fct.fabric_default.Fct.f_short_bytes)
         o.Fct.fo_samples)
  in
  let a = Fct.summarize o.Fct.fo_samples in
  let part name (f : Fct.fct_summary) =
    Printf.sprintf
      "\"%s\": { \"n\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p99_ns\": %d }"
      name f.Fct.fs_n f.Fct.fs_mean_ns f.Fct.fs_p50_ns f.Fct.fs_p99_ns
  in
  Printf.sprintf
    "    { \"transport\": \"%s\", \"load\": %.2f, \"started\": %d, \
     \"completed\": %d, \"completed_frac\": %.3f, %s, %s, %s, \"drops\": %d, \
     \"trims\": %d, \"events\": %d, \"wall_s\": %.3f }"
    (Fct.transport_name o.Fct.fo_transport)
    load o.Fct.fo_started o.Fct.fo_completed (drain_frac o) (part "short" s)
    (part "long" l) (part "all" a) o.Fct.fo_drops o.Fct.fo_trims
    o.Fct.fo_events wall

let transports_bench cfg =
  let tag =
    if cfg.smoke then "perf(transports smoke)" else "perf(transports)"
  in
  let loads =
    if cfg.smoke then [ transports_gate_load ] else [ 0.2; 0.4; 0.6; 0.8 ]
  in
  let shards = if cfg.shards > 0 then cfg.shards else 4 in
  Printf.printf "%s: k=%d fat-tree, loads [%s], %d shards for identity\n%!" tag
    Fct.fabric_default.Fct.fk
    (String.concat "; " (List.map (Printf.sprintf "%.2f") loads))
    shards;
  (* Sequential rows: transport x load. *)
  let rows = ref [] in
  let gate = Hashtbl.create 8 in
  let min_frac = ref 1.0 in
  let drain_warnings = ref 0 in
  List.iter
    (fun transport ->
      List.iter
        (fun load ->
          let p = transports_params cfg ~load ~chaos:false in
          let t0 = Unix.gettimeofday () in
          let o = Fct.fabric_run transport p in
          let wall = Unix.gettimeofday () -. t0 in
          if load = transports_gate_load then
            Hashtbl.replace gate transport o;
          let s =
            Fct.summarize (Fct.short_samples o ~threshold:p.Fct.f_short_bytes)
          in
          Printf.printf
            "%s: %-8s load %.2f  %d/%d done (%3.0f%%)  short p50 %6.0fus p99 \
             %6.0fus  drops %d trims %d (%.2fs)\n%!"
            tag
            (Fct.transport_name transport)
            load o.Fct.fo_completed o.Fct.fo_started
            (100.0 *. drain_frac o)
            (float_of_int s.Fct.fs_p50_ns /. 1e3)
            (float_of_int s.Fct.fs_p99_ns /. 1e3)
            o.Fct.fo_drops o.Fct.fo_trims wall;
          let frac = drain_frac o in
          if frac < !min_frac then min_frac := frac;
          if frac < transports_drain_warn_frac then begin
            incr drain_warnings;
            Printf.printf
              "%s: WARNING — %s at load %.2f drained only %d of %d started \
               flows (%.0f%% < %.0f%%): its FCT percentiles cover completed \
               flows only and are survivor-biased\n%!"
              tag
              (Fct.transport_name transport)
              load o.Fct.fo_completed o.Fct.fo_started (100.0 *. frac)
              (100.0 *. transports_drain_warn_frac)
          end;
          rows := transports_row_json o ~load ~wall :: !rows)
        loads)
    Fct.all_transports;
  let rows = List.rev !rows in
  (* Gate 1: NDP beats TCP on 99p short-flow FCT at the gate load. *)
  let p99_short transport =
    let o = Hashtbl.find gate transport in
    (Fct.summarize
       (Fct.short_samples o
          ~threshold:Fct.fabric_default.Fct.f_short_bytes))
      .Fct.fs_p99_ns
  in
  let ndp_p99 = p99_short Fct.Ndp_t in
  let tcp_p99 = p99_short Fct.Tcp_t in
  if ndp_p99 <= 0 || ndp_p99 >= tcp_p99 then begin
    Printf.eprintf
      "%s: FAIL — NDP 99p short-flow FCT (%dns) does not beat TCP (%dns) at \
       load %.2f\n"
      tag ndp_p99 tcp_p99 transports_gate_load;
    exit 1
  end;
  Printf.printf "%s: NDP 99p short FCT %.0fus beats TCP %.0fus at load %.2f\n%!"
    tag
    (float_of_int ndp_p99 /. 1e3)
    (float_of_int tcp_p99 /. 1e3)
    transports_gate_load;
  (* Gate 2: sequential vs sharded identity, all five transports. *)
  List.iter
    (fun transport ->
      let p = transports_params cfg ~load:transports_gate_load ~chaos:false in
      let seq = Hashtbl.find gate transport in
      let par = Fct.fabric_run ~shards transport p in
      if Fct.fingerprint seq <> Fct.fingerprint par then begin
        Printf.eprintf
          "%s: FAIL — %s diverged under %d shards (seq %d/%d vs par %d/%d \
           completed/started)\n"
          tag
          (Fct.transport_name transport)
          shards seq.Fct.fo_completed seq.Fct.fo_started par.Fct.fo_completed
          par.Fct.fo_started;
        exit 1
      end)
    Fct.all_transports;
  Printf.printf
    "%s: all five transports bit-identical sequential vs %d shards\n%!" tag
    shards;
  (* Gate 3: NDP completes everything under the chaotic drop schedule.
     The gate is about loss *recovery*, so the workload is shaped to
     make 100% completion the right criterion: moderate load and a
     flow-size cap, because at peak load an uncapped Pareto tail can
     leave a pair with more backlog at the arrival window's end than
     any transport can drain before the horizon, drops or not. *)
  let chaos_p =
    {
      (transports_params cfg ~load:0.4 ~chaos:true) with
      Fct.f_max_bytes = 100_000;
    }
  in
  let chaos_o = Fct.fabric_run Fct.Ndp_t chaos_p in
  if
    chaos_o.Fct.fo_started = 0
    || chaos_o.Fct.fo_completed <> chaos_o.Fct.fo_started
    || not chaos_o.Fct.fo_ok
  then begin
    Printf.eprintf
      "%s: FAIL — NDP under %.0f%% access-link drop completed %d of %d \
       (invariants %s)\n"
      tag
      (transports_chaos_drop *. 100.0)
      chaos_o.Fct.fo_completed chaos_o.Fct.fo_started
      (if chaos_o.Fct.fo_ok then "ok" else "VIOLATED");
    exit 1
  end;
  Printf.printf
    "%s: NDP chaos (%.0f%% drop): %d/%d messages completed, invariants ok, \
     %d trims\n%!"
    tag
    (transports_chaos_drop *. 100.0)
    chaos_o.Fct.fo_completed chaos_o.Fct.fo_started chaos_o.Fct.fo_trims;
  (* Gate 4: the trim hot path is allocation-free (<= budget delta). *)
  let iters = if cfg.smoke then 20_000 else 200_000 in
  let drop_trims, drop_pe = trim_microbench ~trim:false ~iters in
  let trim_trims, trim_pe = trim_microbench ~trim:true ~iters in
  if drop_trims <> 0 || trim_trims < iters then begin
    Printf.eprintf "%s: FAIL — trim microbench did not exercise the trim path\n"
      tag;
    exit 1
  end;
  let delta = trim_pe -. drop_pe in
  Printf.printf
    "%s: trim hot path %.2f minor w/frame vs drop %.2f (delta %.2f, budget \
     %.1f)\n%!"
    tag trim_pe drop_pe delta transports_trim_budget;
  if delta > transports_trim_budget then begin
    Printf.eprintf
      "%s: FAIL — trimmed-header path allocates %.2f minor words/frame over \
       the drop path (budget %.1f)\n"
      tag delta transports_trim_budget;
    exit 1
  end;
  Printf.printf
    "%s: OK — NDP beats TCP on short flows, identity holds, chaos completes, \
     trim is allocation-free\n%!"
    tag;
  let out = match cfg.out with Some o -> o | None -> "BENCH_8.json" in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"transports\",\n\
    \  \"smoke\": %b,\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml_version\": \"%s\",\n\
    \  \"fabric\": { \"k\": %d, \"link_bps\": %d, \"delay_ns\": %d, \
     \"mean_flow_bytes\": %.0f, \"pareto_shape\": %.2f, \"duration_ns\": %d, \
     \"short_threshold_bytes\": %d },\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"gates\": {\n\
    \    \"ndp_vs_tcp_p99_short_ns\": { \"ndp\": %d, \"tcp\": %d, \"load\": \
     %.2f },\n\
    \    \"identity_shards\": %d,\n\
    \    \"chaos\": { \"drop\": %.3f, \"started\": %d, \"completed\": %d, \
     \"trims\": %d },\n\
    \    \"drain\": { \"min_completed_frac\": %.3f, \"warn_below\": %.2f, \
     \"warnings\": %d },\n\
    \    \"trim_minor_words_per_frame\": { \"trim\": %.3f, \"drop\": %.3f, \
     \"delta\": %.3f, \"budget\": %.1f }\n\
    \  }\n\
     }\n"
    cfg.smoke (git_commit ()) Sys.ocaml_version Fct.fabric_default.Fct.fk
    Fct.fabric_default.Fct.f_bps Fct.fabric_default.Fct.f_delay_ns
    Fct.fabric_default.Fct.f_mean_bytes Fct.fabric_default.Fct.f_shape
    (transports_params cfg ~load:transports_gate_load ~chaos:false)
      .Fct.f_duration
    Fct.fabric_default.Fct.f_short_bytes
    (String.concat ",\n" rows)
    ndp_p99 tcp_p99 transports_gate_load shards transports_chaos_drop
    chaos_o.Fct.fo_started chaos_o.Fct.fo_completed chaos_o.Fct.fo_trims
    !min_frac transports_drain_warn_frac !drain_warnings trim_pe drop_pe delta
    transports_trim_budget;
  close_out oc;
  Printf.printf "%s: wrote %s\n%!" tag out

(* ---- scale workload (BENCH_9): the million-host fabric gate ---------

   Three claims behind the ROADMAP's million-host item, each measured:

   1. Aggregated FIBs. Under `Pods addressing every switch installs
      O(1) prefix entries — a Connected block route over everything
      below it plus an ECMP default up — instead of O(hosts) /32s. The
      per-host /32 installation stays available as the differential
      oracle: the same pooled traffic must leave every switch register
      (ECMP spraying included) bit-identical to the oracle, both
      sequentially and under the sharded scheduler, while the k=32
      fabric's FIB shrinks >= 50x. The oracle is measured for real
      wherever its trie fits (it is the thing that does NOT scale — the
      k=32 oracle costs ~8192 entries on each of 1280 switches, which
      is exactly why aggregation exists — so the k=32 oracle count is
      the closed form hosts-/32s-per-switch, verified against the
      measured count at every smaller k).

   2. Memory-lean topology. The SoA link state plus flyweight hosts
      must fit a 100k-host leaf-spine in <= 200 bytes per idle host,
      measured as the compacted live-word delta across the build.

   3. No throughput regression: the k=16 aggregated fabric must process
      events at least at the fabric rate recorded in BENCH_6.json. *)

let scale_bytes_budget = 200.0
let scale_fib_reduction_target = 50.0
let scale_link_bps = 10_000_000_000
let scale_link_delay = Time_ns.us 1

let scale_build ?event_mode ~fib cfg eng =
  let ft =
    Topology.fat_tree eng ~wire_check:cfg.wire_check ?event_mode ~ecmp:true
      ~addressing:`Pods ~fib ~k:cfg.k ~bps:scale_link_bps
      ~delay:scale_link_delay ()
  in
  ft.Topology.f_net

let fib_per_switch net =
  let total = ref 0 and n = ref 0 in
  List.iter
    (fun (_, sw) ->
      incr n;
      total := !total + Switch.l3_size sw)
    (Net.switches net);
  float_of_int !total /. float_of_int (max 1 !n)

let run_scale_fabric cfg ~fib =
  let eng = Engine.create ~scheduler:`Wheel () in
  let net = scale_build ~event_mode:`Typed ~fib cfg eng in
  ignore (setup_pooled_traffic cfg ~owns:(fun _ -> true) net);
  let g0 = gc_mark () in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let minor, promoted = gc_delta g0 in
  let events = Engine.events_processed eng in
  ( { g_events = events; g_delivered = Net.frames_delivered net; g_wall = wall;
      g_minor_pe = per_event minor events;
      g_promoted_pe = per_event promoted events;
      g_fp = net_fp ~owns:(fun _ -> true) net },
    fib_per_switch net )

let run_scale_parallel cfg ~fib ~shards =
  let stats, parts =
    Parsim.run ~scheduler:`Wheel ~shards ~until:horizon
      ~build:(scale_build ~event_mode:`Typed ~fib cfg)
      ~setup:(fun ~shard:_ ~owns net ->
        ignore (setup_pooled_traffic cfg ~owns net))
      ~collect:(fun ~shard:_ ~owns net -> net_fp ~owns net)
      ()
  in
  let fp =
    Array.to_list parts |> List.concat
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (stats.Parsim.events, stats.Parsim.delivered, fp)

(* Build-memory probe: compacted live words before and after running
   [f], whose result is kept alive across the second compaction so the
   delta is the structure's steady-state footprint, not its garbage. *)
let scale_build_bytes f =
  Gc.compact ();
  let w0 = (Gc.stat ()).Gc.live_words in
  let keep = Sys.opaque_identity (f ()) in
  Gc.compact ();
  let w1 = (Gc.stat ()).Gc.live_words in
  ignore (Sys.opaque_identity keep);
  (w1 - w0) * (Sys.word_size / 8)

let scale_fat_tree_bytes_per_host cfg =
  let hosts = cfg.k * cfg.k * cfg.k / 4 in
  let bytes =
    scale_build_bytes (fun () ->
        let eng = Engine.create ~scheduler:`Wheel () in
        (eng, scale_build ~event_mode:`Typed ~fib:`Aggregated cfg eng))
  in
  float_of_int bytes /. float_of_int hosts

let scale_leaf_spine_bytes ~leaves ~spines ~hosts_per_leaf =
  let hosts = leaves * hosts_per_leaf in
  let bytes =
    scale_build_bytes (fun () ->
        let eng = Engine.create ~scheduler:`Wheel () in
        let ls =
          Topology.leaf_spine eng ~ecmp:true ~leaves ~spines ~hosts_per_leaf
            ~bps:scale_link_bps ~delay:scale_link_delay ()
        in
        (eng, ls))
  in
  (hosts, float_of_int bytes /. float_of_int hosts)

(* The k=16 row's throughput floor: the pooled fabric rate BENCH_6
   recorded on this machine. Read back with the same first-occurrence
   key scan bench/report.ml uses — BENCH_6's top-level events_per_sec
   precedes its oracle subobject. *)
let scale_floor () =
  let path = "BENCH_6.json" in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let needle = "\"events_per_sec\":" in
    let nl = String.length needle and tl = String.length text in
    let rec find i =
      if i + nl > tl then None
      else if String.sub text i nl = needle then Some (i + nl)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let s = ref start in
      while !s < tl && (text.[!s] = ' ' || text.[!s] = '\n') do incr s done;
      let e = ref !s in
      while
        !e < tl
        && (match text.[!e] with
           | '0' .. '9' | '-' | '.' | 'e' | '+' -> true
           | _ -> false)
      do
        incr e
      done;
      if !e = !s then None
      else float_of_string_opt (String.sub text !s (!e - !s))
  end

type scale_row = {
  s_k : int;
  s_hosts : int;
  s_switches : int;
  s_run : engine_run;
  s_fib : float;          (* aggregated L3 entries per switch *)
  s_fib_oracle : float;   (* per-host /32 entries per switch *)
  s_oracle_measured : bool;
  s_bytes_per_host : float;
  s_shards : int;
}

(* One fabric size: timed aggregated run, oracle equivalence, sharded
   identity, FIB census and build footprint. Exits on any divergence. *)
let scale_row cfg ~tag ~shards ~measure_oracle ~timed =
  let hosts = cfg.k * cfg.k * cfg.k / 4 in
  let switches = 5 * cfg.k * cfg.k / 4 in
  Printf.printf "%s: k=%d — %s, aggregated FIBs\n%!" tag cfg.k
    (engine_workload_of cfg);
  let agg, agg_fib =
    if timed then begin
      let a = run_scale_fabric cfg ~fib:`Aggregated in
      let b = run_scale_fabric cfg ~fib:`Aggregated in
      if (fst b).g_wall < (fst a).g_wall then b else a
    end
    else run_scale_fabric cfg ~fib:`Aggregated
  in
  Printf.printf
    "%s: k=%d aggregated  %d events, %d delivered in %.3fs (%.3e ev/s, %.2f \
     minor w/ev), %.1f FIB entries/switch\n%!"
    tag cfg.k agg.g_events agg.g_delivered agg.g_wall
    (float_of_int agg.g_events /. agg.g_wall)
    agg.g_minor_pe agg_fib;
  let fib_oracle =
    if measure_oracle then begin
      let orc, orc_fib = run_scale_fabric cfg ~fib:`Host32 in
      if
        orc.g_events <> agg.g_events
        || orc.g_delivered <> agg.g_delivered
        || orc.g_fp <> agg.g_fp
      then begin
        Printf.eprintf
          "%s: FAIL — k=%d aggregated FIBs diverged from the /32 oracle \
           (%d/%d events, %d/%d delivered)\n"
          tag cfg.k agg.g_events orc.g_events agg.g_delivered orc.g_delivered;
        exit 1
      end;
      Printf.printf
        "%s: k=%d oracle      identical registers at %.1f FIB entries/switch \
         (%.1fx more)\n%!"
        tag cfg.k orc_fib (orc_fib /. agg_fib);
      orc_fib
    end
    else begin
      (* The /32 oracle installs one host route on every switch, so its
         per-switch count is exactly [hosts] — the closed form the
         measured counts confirm at every k where the trie fits. *)
      Printf.printf
        "%s: k=%d oracle      counted analytically: %d /32 entries/switch \
         (trie would not fit — the point of aggregation)\n%!"
        tag cfg.k hosts;
      float_of_int hosts
    end
  in
  let par_events, par_delivered, par_fp =
    run_scale_parallel cfg ~fib:`Aggregated ~shards
  in
  if
    par_events <> agg.g_events
    || par_delivered <> agg.g_delivered
    || par_fp <> agg.g_fp
  then begin
    Printf.eprintf
      "%s: FAIL — k=%d %d-shard aggregated run diverged from sequential \
       (%d/%d events, %d/%d delivered)\n"
      tag cfg.k shards par_events agg.g_events par_delivered agg.g_delivered;
    exit 1
  end;
  Printf.printf "%s: k=%d %d-shard     identical to sequential\n%!" tag cfg.k
    shards;
  let bytes_per_host = scale_fat_tree_bytes_per_host cfg in
  Printf.printf "%s: k=%d build       %.1f bytes/host\n%!" tag cfg.k
    bytes_per_host;
  {
    s_k = cfg.k;
    s_hosts = hosts;
    s_switches = switches;
    s_run = agg;
    s_fib = agg_fib;
    s_fib_oracle = fib_oracle;
    s_oracle_measured = measure_oracle;
    s_bytes_per_host = bytes_per_host;
    s_shards = shards;
  }

(* Leaf-spine forwarding sanity: a small fabric must deliver every
   pooled frame and agree bit-for-bit with its own sharded run — the
   memory-lean build is only interesting if it still forwards. *)
let scale_leaf_spine_traffic cfg ~tag ~shards =
  let leaves = 8 and spines = 4 and hosts_per_leaf = 10 in
  let build ?event_mode:_ eng =
    (Topology.leaf_spine eng ~wire_check:cfg.wire_check ~ecmp:true ~leaves
       ~spines ~hosts_per_leaf ~bps:scale_link_bps ~delay:scale_link_delay ())
      .Topology.ls_net
  in
  let eng = Engine.create ~scheduler:`Wheel () in
  let net = build eng in
  ignore (setup_pooled_traffic cfg ~owns:(fun _ -> true) net);
  Engine.run eng ~until:horizon;
  let sent = leaves * hosts_per_leaf * cfg.packets_per_host in
  let delivered = Net.frames_delivered net in
  if delivered <> sent then begin
    Printf.eprintf
      "%s: FAIL — leaf-spine delivered %d of %d pooled frames\n" tag delivered
      sent;
    exit 1
  end;
  let seq_fp = net_fp ~owns:(fun _ -> true) net in
  let stats, parts =
    Parsim.run ~scheduler:`Wheel ~shards ~until:horizon ~build
      ~setup:(fun ~shard:_ ~owns net ->
        ignore (setup_pooled_traffic cfg ~owns net))
      ~collect:(fun ~shard:_ ~owns net -> net_fp ~owns net)
      ()
  in
  let par_fp =
    Array.to_list parts |> List.concat
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if stats.Parsim.delivered <> delivered || par_fp <> seq_fp then begin
    Printf.eprintf
      "%s: FAIL — %d-shard leaf-spine diverged from sequential (%d vs %d \
       delivered)\n"
      tag shards stats.Parsim.delivered delivered;
    exit 1
  end;
  Printf.printf
    "%s: leaf-spine %dx%d (%d hosts) delivered all %d frames, %d-shard \
     identical\n%!"
    tag leaves spines (leaves * hosts_per_leaf) sent shards

let write_scale_json ~out ~(rows : scale_row list) ~floor ~ls =
  let ls_leaves, ls_spines, ls_hpl, ls_hosts, ls_bph = ls in
  let headline = List.hd rows in
  let row_json (r : scale_row) =
    Printf.sprintf
      "    { \"k\": %d, \"hosts\": %d, \"switches\": %d, \"events\": %d, \
       \"packets_delivered\": %d, \"wall_s\": %.6f, \"events_per_sec\": \
       %.1f,\n\
      \      \"minor_words_per_event\": %.3f, \"fib_entries_per_switch\": \
       %.2f, \"fib_oracle_entries_per_switch\": %.1f, \"fib_reduction\": \
       %.1f,\n\
      \      \"oracle_measured\": %b, \"bytes_per_host\": %.1f, \"shards\": \
       %d, \"identical\": true }"
      r.s_k r.s_hosts r.s_switches r.s_run.g_events r.s_run.g_delivered
      r.s_run.g_wall
      (float_of_int r.s_run.g_events /. r.s_run.g_wall)
      r.s_run.g_minor_pe r.s_fib r.s_fib_oracle
      (r.s_fib_oracle /. r.s_fib)
      r.s_oracle_measured r.s_bytes_per_host r.s_shards
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 9,\n\
    \  \"workload\": \"aggregated-FIB fat-trees (pooled plain UDP) + \
     leaf-spine build memory\",\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"hosts\": %d,\n\
    \  \"events\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"minor_words_per_event\": %.3f,\n\
    \  \"bytes_per_host\": %.1f,\n\
    \  \"fib_entries_per_switch\": %.2f,\n\
    \  \"fib_reduction\": %.1f,\n\
    \  \"events_per_sec_floor\": { \"source\": \"BENCH_6.json\", \"floor\": \
     %s, \"enforced\": %b },\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"leaf_spine\": { \"leaves\": %d, \"spines\": %d, \"hosts_per_leaf\": \
     %d, \"hosts\": %d,\n\
    \                  \"bytes_per_host\": %.1f, \"budget_bytes_per_host\": \
     %.0f },\n\
    \  \"identical\": true\n\
     }\n"
    (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    headline.s_hosts headline.s_run.g_events headline.s_run.g_wall
    (float_of_int headline.s_run.g_events /. headline.s_run.g_wall)
    headline.s_run.g_minor_pe headline.s_bytes_per_host headline.s_fib
    (headline.s_fib_oracle /. headline.s_fib)
    (match floor with Some f -> Printf.sprintf "%.1f" f | None -> "null")
    (floor <> None)
    (String.concat ",\n" (List.map row_json rows))
    ls_leaves ls_spines ls_hpl ls_hosts ls_bph scale_bytes_budget;
  close_out oc;
  Printf.printf "%s: wrote %s\n%!" "perf(scale)" out

let scale_bench cfg =
  let tag = if cfg.smoke then "perf(scale smoke)" else "perf(scale)" in
  let shards =
    if cfg.smoke then 2 else if cfg.shards > 0 then cfg.shards else 4
  in
  if cfg.smoke then begin
    (* CI variant: the k=8 route-equivalence and sharded-identity gates
       plus leaf-spine delivery, all at bounded size. No JSON, no
       machine-dependent perf gates. *)
    let cfg8 = { cfg with k = 8; packets_per_host = 100 } in
    let row =
      scale_row cfg8 ~tag ~shards ~measure_oracle:true ~timed:false
    in
    if row.s_fib_oracle /. row.s_fib < 2.0 then begin
      Printf.eprintf "%s: FAIL — aggregation did not shrink the FIB (%.1f vs \
                      %.1f entries/switch)\n"
        tag row.s_fib row.s_fib_oracle;
      exit 1
    end;
    scale_leaf_spine_traffic { cfg8 with packets_per_host = 200 } ~tag ~shards;
    Printf.printf
      "%s: OK — aggregated FIBs identical to the /32 oracle (sequential and \
       %d-shard), leaf-spine delivers\n%!"
      tag shards
  end
  else begin
    (* k=16: the timed, gated row — oracle measured for real. *)
    let row16 =
      scale_row
        { cfg with k = 16; packets_per_host = 400 }
        ~tag ~shards ~measure_oracle:true ~timed:true
    in
    (* k=32: 8192 hosts. The aggregated fabric builds and runs; the
       oracle trie (8192 x 1280 entries) is the thing aggregation
       retires, so its census is the closed form. *)
    let row32 =
      scale_row
        { cfg with k = 32; packets_per_host = 80 }
        ~tag ~shards ~measure_oracle:false ~timed:false
    in
    let reduction = row32.s_fib_oracle /. row32.s_fib in
    if reduction < scale_fib_reduction_target then begin
      Printf.eprintf
        "%s: FAIL — k=32 FIB shrank only %.1fx (%.2f vs %.1f entries/switch, \
         target %.0fx)\n"
        tag reduction row32.s_fib row32.s_fib_oracle scale_fib_reduction_target;
      exit 1
    end;
    Printf.printf "%s: k=32 FIB reduction %.0fx (target %.0fx)\n%!" tag
      reduction scale_fib_reduction_target;
    (* Throughput floor from BENCH_6. *)
    let floor = scale_floor () in
    let rate16 = float_of_int row16.s_run.g_events /. row16.s_run.g_wall in
    (match floor with
    | Some f ->
      if rate16 < f then begin
        Printf.eprintf
          "%s: FAIL — k=16 runs at %.3e events/sec, below the BENCH_6 fabric \
           rate %.3e\n"
          tag rate16 f;
        exit 1
      end;
      Printf.printf "%s: k=16 rate %.3e ev/s holds the BENCH_6 floor %.3e\n%!"
        tag rate16 f
    | None ->
      Printf.printf
        "%s: SKIPPED events/sec floor — no BENCH_6.json in the working \
         directory (run --frames first)\n%!"
        tag);
    (* Leaf-spine: forwarding sanity, then the 100k-host build budget. *)
    scale_leaf_spine_traffic
      { cfg with packets_per_host = 200 }
      ~tag ~shards;
    let leaves = 400 and spines = 8 and hosts_per_leaf = 250 in
    let ls_hosts, ls_bph =
      scale_leaf_spine_bytes ~leaves ~spines ~hosts_per_leaf
    in
    Printf.printf
      "%s: leaf-spine %dx%d, %d hosts: %.1f bytes/host (budget %.0f)\n%!" tag
      leaves spines ls_hosts ls_bph scale_bytes_budget;
    if ls_bph > scale_bytes_budget then begin
      Printf.eprintf
        "%s: FAIL — %d-host leaf-spine costs %.1f bytes/host (budget %.0f)\n"
        tag ls_hosts ls_bph scale_bytes_budget;
      exit 1
    end;
    Printf.printf
      "%s: OK — aggregated FIBs oracle-identical (sequential and %d-shard), \
       k=32 FIB %.0fx smaller, %d hosts at %.1f bytes each\n%!"
      tag shards reduction ls_hosts ls_bph;
    let out = match cfg.out with Some o -> o | None -> "BENCH_9.json" in
    write_scale_json ~out ~rows:[ row16; row32 ] ~floor
      ~ls:(leaves, spines, hosts_per_leaf, ls_hosts, ls_bph)
  end

let () =
  let cfg = ref default in
  let rec parse = function
    | [] -> ()
    | "--perf" :: rest | "--" :: rest -> parse rest
    | "--k" :: v :: rest ->
      cfg := { !cfg with k = int_of_string v };
      parse rest
    | "--packets" :: v :: rest ->
      cfg := { !cfg with packets_per_host = int_of_string v };
      parse rest
    | "--shards" :: v :: rest ->
      let s = int_of_string v in
      if s < 0 then begin
        Printf.eprintf "perf: --shards expects a non-negative count\n";
        exit 2
      end;
      cfg := { !cfg with shards = s };
      parse rest
    | "--smoke" :: rest ->
      cfg := { !cfg with smoke = true };
      parse rest
    | "--tpp-heavy" :: rest ->
      cfg := { !cfg with tpp_heavy = true };
      parse rest
    | "--chaos" :: rest ->
      cfg := { !cfg with chaos = true };
      parse rest
    | "--engine" :: rest ->
      cfg := { !cfg with engine = true };
      parse rest
    | "--frames" :: rest ->
      cfg := { !cfg with frames = true };
      parse rest
    | "--telemetry" :: rest ->
      cfg := { !cfg with telemetry = true };
      parse rest
    | "--transports" :: rest ->
      cfg := { !cfg with transports = true };
      parse rest
    | "--scale" :: rest ->
      cfg := { !cfg with scale = true };
      parse rest
    | "--out" :: v :: rest ->
      cfg := { !cfg with out = Some v };
      parse rest
    | "--wire-check" :: v :: rest ->
      let wc =
        match v with
        | "always" -> `Always
        | "cached" -> `Cached
        | "off" -> `Off
        | _ ->
          Printf.eprintf "perf: --wire-check expects always|cached|off\n";
          exit 2
      in
      cfg := { !cfg with wire_check = wc };
      parse rest
    | a :: _ ->
      Printf.eprintf "perf: unknown argument %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = !cfg in
  if cfg.scale then scale_bench cfg
  else if cfg.transports then transports_bench cfg
  else if cfg.telemetry then telemetry_bench cfg
  else if cfg.frames then frames_bench cfg
  else if cfg.engine then engine_bench cfg
  else if cfg.chaos then chaos cfg
  else if cfg.tpp_heavy then tpp_heavy cfg
  else if cfg.smoke then smoke cfg
  else if cfg.shards > 0 then shards_bench cfg
  else begin
    let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
    Printf.printf "perf: %s\n%!" (workload_of cfg);
    let r = run_sequential cfg in
    Printf.printf
      "perf: %d events, %d/%d packets delivered in %.3fs wall\n\
       perf: %.3e events/sec, %.3e packets/sec\n\
       perf: %.2f minor words/event, %.4f promoted words/event\n%!"
      r.events r.delivered sent r.wall
      (float_of_int r.events /. r.wall)
      (float_of_int r.delivered /. r.wall)
      r.minor_pe r.promoted_pe;
    let out = match cfg.out with Some o -> o | None -> "BENCH_1.json" in
    write_json cfg ~out r
  end
