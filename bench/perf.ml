(* Packet-rate benchmark: the dataplane fast-path gate.

   Drives a many-switch ECMP fat-tree with TPP-tagged UDP flows and
   reports end-to-end event and packet throughput of the simulator
   itself (wall-clock, not simulated time). Writes a machine-readable
   BENCH_<n>.json so successive PRs have a trajectory to beat.

     dune exec bench/perf.exe                 default workload
     dune exec bench/perf.exe -- --k 4        smaller fabric
     dune exec bench/perf.exe -- --out b.json custom output path
*)

open Tpp

let collect_program =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Link:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n\
   PUSH [Link:Drops]\n"

type config = {
  k : int;                    (* fat-tree arity *)
  packets_per_host : int;
  payload_bytes : int;
  gap_ns : int;               (* inter-departure time per host *)
  wire_check : Net.wire_check;
  out : string;
}

let default =
  { k = 8; packets_per_host = 1500; payload_bytes = 1000; gap_ns = 6_000;
    wire_check = `Cached; out = "BENCH_1.json" }

let run cfg =
  let eng = Engine.create () in
  let ft =
    Topology.fat_tree eng ~wire_check:cfg.wire_check ~ecmp:true ~k:cfg.k
      ~bps:10_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  let hosts = ft.Topology.f_hosts in
  let n = Array.length hosts in
  let net = ft.Topology.f_net in
  let received = ref 0 in
  Array.iter
    (fun h -> h.Net.receive <- (fun ~now:_ _ -> incr received))
    hosts;
  let tpp_template =
    Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program)
  in
  let payload = Bytes.create cfg.payload_bytes in
  (* Every host streams to a partner in the opposite half of the fabric,
     so flows cross edge, aggregation and core layers and exercise ECMP. *)
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7
        ~tpp:(Prog.copy tpp_template) ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    for j = 0 to cfg.packets_per_host - 1 do
      (* Offset hosts against each other so departures are not all
         simultaneous (keeps the event heap realistically mixed). *)
      let t = (j * cfg.gap_ns) + (src * 7) + 1 in
      Engine.at eng t (fun () -> send src)
    done
  done;
  let horizon = Time_ns.sec 10 in
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Engine.events_processed eng in
  let sent = n * cfg.packets_per_host in
  (events, sent, !received, wall)

let () =
  let cfg = ref default in
  let rec parse = function
    | [] -> ()
    | "--perf" :: rest | "--" :: rest -> parse rest
    | "--k" :: v :: rest ->
      cfg := { !cfg with k = int_of_string v };
      parse rest
    | "--packets" :: v :: rest ->
      cfg := { !cfg with packets_per_host = int_of_string v };
      parse rest
    | "--out" :: v :: rest ->
      cfg := { !cfg with out = v };
      parse rest
    | "--wire-check" :: v :: rest ->
      let wc =
        match v with
        | "always" -> `Always
        | "cached" -> `Cached
        | "off" -> `Off
        | _ ->
          Printf.eprintf "perf: --wire-check expects always|cached|off\n";
          exit 2
      in
      cfg := { !cfg with wire_check = wc };
      parse rest
    | a :: _ ->
      Printf.eprintf "perf: unknown argument %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = !cfg in
  let workload =
    Printf.sprintf
      "fat-tree k=%d (ECMP), %d hosts x %d TPP-tagged UDP packets, %dB \
       payload, wire_check=%s"
      cfg.k
      (cfg.k * cfg.k * cfg.k / 4)
      cfg.packets_per_host cfg.payload_bytes
      (match cfg.wire_check with
      | `Always -> "always"
      | `Cached -> "cached"
      | `Off -> "off")
  in
  Printf.printf "perf: %s\n%!" workload;
  let events, sent, received, wall = run cfg in
  let events_per_sec = float_of_int events /. wall in
  let packets_per_sec = float_of_int received /. wall in
  Printf.printf
    "perf: %d events, %d/%d packets delivered in %.3fs wall\n\
     perf: %.3e events/sec, %.3e packets/sec\n%!"
    events received sent wall events_per_sec packets_per_sec;
  let oc = open_out cfg.out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": 1,\n\
    \  \"workload\": \"%s\",\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"packets_per_sec\": %.1f\n\
     }\n"
    workload events sent received wall events_per_sec packets_per_sec;
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" cfg.out
