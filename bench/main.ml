(* The experiment harness: regenerates every table and figure of the
   paper (see DESIGN.md for the index). Usage:

     dune exec bench/main.exe              run all experiments
     dune exec bench/main.exe e2 e5        run a subset
     dune exec bench/main.exe -- --micro   also run bechamel microbenches
     dune exec bench/main.exe -- --benches summarise BENCH_*.json and exit
*)

open Tpp

let approx ~tolerance a b = Float.abs (a -. b) <= tolerance

(* --- E2: Figure 2 ------------------------------------------------------ *)

let e2 () =
  Report.section "E2 / Figure 2"
    "RCP* (TPP + end-host) vs in-network RCP: R(t)/C convergence";
  let params = Fig2.default in
  Report.kv "setup"
    "10 Mb/s bottleneck dumbbell, flows join at t = 0, 10, 20 s; alpha = 0.5, beta = 1";
  let star = Fig2.run_rcp_star params in
  let rcp = Fig2.run_rcp params in
  Report.sub "R(t)/C at the bottleneck (1-second buckets)";
  Tpp_util.Series.print_table
    [ star.Fig2.series; rcp.Fig2.series ]
    ~bucket:(Time_ns.sec 1);
  Report.plot ~y_label:"R(t)/C" [ star.Fig2.series; rcp.Fig2.series ];
  Report.write_csv ~name:"e2_rcp_star" ~header:"time_s,r_over_c"
    (Report.csv_of_series star.Fig2.series);
  Report.write_csv ~name:"e2_rcp" ~header:"time_s,r_over_c"
    (Report.csv_of_series rcp.Fig2.series);
  Report.sub "paper expectations (shape, not absolute numbers)";
  let windows = [ ("1 flow", 5, 10, 1.0); ("2 flows", 15, 20, 0.5); ("3 flows", 25, 30, 1.0 /. 3.0) ] in
  List.iter
    (fun (label, from_sec, to_sec, fair) ->
      let m_star = Fig2.mean_between star.Fig2.series ~from_sec ~to_sec in
      let m_rcp = Fig2.mean_between rcp.Fig2.series ~from_sec ~to_sec in
      Report.expect
        ~what:(Printf.sprintf "%s: RCP* near fair share" label)
        ~paper:(Printf.sprintf "R/C = %.2f" fair)
        ~measured:(Printf.sprintf "%.3f" m_star)
        (approx ~tolerance:0.15 m_star fair);
      Report.expect
        ~what:(Printf.sprintf "%s: RCP near fair share" label)
        ~paper:(Printf.sprintf "R/C = %.2f" fair)
        ~measured:(Printf.sprintf "%.3f" m_rcp)
        (approx ~tolerance:0.15 m_rcp fair);
      Report.expect
        ~what:(Printf.sprintf "%s: RCP* tracks RCP" label)
        ~paper:"qualitatively similar"
        ~measured:(Printf.sprintf "|%.3f - %.3f| = %.3f" m_star m_rcp
                     (Float.abs (m_star -. m_rcp)))
        (approx ~tolerance:0.15 m_star m_rcp))
    windows;
  Report.sub "flow goodput over each flow's lifetime (Mb/s)";
  List.iteri
    (fun i g -> Report.kvf (Printf.sprintf "RCP* flow %d" i) (g /. 1e6))
    star.Fig2.goodputs_bps;
  List.iteri
    (fun i g -> Report.kvf (Printf.sprintf "RCP  flow %d" i) (g /. 1e6))
    rcp.Fig2.goodputs_bps;
  Report.kvi "RCP* bottleneck tail drops" star.Fig2.drops;
  Report.kvi "RCP  bottleneck tail drops" rcp.Fig2.drops

(* --- E5: §2.1 micro-burst detection ------------------------------------- *)

let e5 () =
  Report.section "E5 / §2.1" "micro-burst detection: per-RTT TPPs vs management polling";
  let p = Burst_exp.default in
  Report.kv "setup"
    "two on/off senders share a 100 Mb/s uplink; overlapping ~45 KB bursts";
  Report.kv "threshold" (Printf.sprintf "%d bytes of queue" p.Burst_exp.threshold_bytes);
  let r = Burst_exp.run p in
  Printf.printf "\n  %-34s %10s %14s\n" "observer" "episodes" "max queue (B)";
  Printf.printf "  %-34s %10d %14d\n" "oracle (50us ground truth)"
    r.Burst_exp.oracle_episodes r.Burst_exp.oracle_max_queue;
  Printf.printf "  %-34s %10d %14d\n"
    (Printf.sprintf "TPP probes (1ms, %d sent)" r.Burst_exp.probes_sent)
    r.Burst_exp.tpp_episodes r.Burst_exp.tpp_max_queue;
  Printf.printf "  %-34s %10d %14s\n"
    (Printf.sprintf "SNMP-style poll (1s, %d samples)" r.Burst_exp.poll_samples)
    r.Burst_exp.poll_episodes "-";
  Report.sub "paper expectations";
  Report.expect ~what:"TPPs see (almost) every micro-burst"
    ~paper:"per-RTT visibility"
    ~measured:(Printf.sprintf "%d of %d" r.Burst_exp.tpp_episodes r.Burst_exp.oracle_episodes)
    (10 * r.Burst_exp.tpp_episodes >= 8 * r.Burst_exp.oracle_episodes);
  Report.expect ~what:"coarse polling is blind to them"
    ~paper:"ill-suited for micro-bursts"
    ~measured:(Printf.sprintf "%d of %d" r.Burst_exp.poll_episodes r.Burst_exp.oracle_episodes)
    (5 * r.Burst_exp.poll_episodes <= r.Burst_exp.oracle_episodes)

(* --- E6: §2.3 forwarding-plane debugger --------------------------------- *)

let e6 () =
  Report.section "E6 / §2.3" "forwarding-plane debugger: TPP tracer vs postcard ndb";
  let p = Ndb_exp.default in
  Report.kv "setup"
    "diamond A-{B,C}-D; a stale priority rule on A silently reroutes via C";
  let r = Ndb_exp.run p in
  let path_string ids = String.concat " -> " (List.map (Printf.sprintf "sw%d") ids) in
  Report.kv "control-plane intent" (path_string r.Ndb_exp.expected_path);
  (match r.Ndb_exp.observed_paths with
  | observed :: _ -> Report.kv "dataplane (from one traced packet)" (path_string observed)
  | [] -> Report.kv "dataplane" "no traces!");
  Report.sub "mismatches reported by the verifier";
  List.iter
    (fun m -> Format.printf "  %a@." Verify.pp_mismatch m)
    r.Ndb_exp.mismatches;
  (match r.Ndb_exp.culprit_entry with
  | Some entry -> Report.kvi "culprit flow entry (from the trace)" entry
  | None -> Report.kv "culprit flow entry" "none found");
  Report.sub "overhead for the same visibility";
  Report.kvi "application packets traced" r.Ndb_exp.traced_packets;
  Report.kvi "TPP in-band bytes per packet" r.Ndb_exp.tpp_bytes_per_packet;
  Report.kv "TPP extra packets" "0";
  Report.kvi "postcard packets (ndb baseline)" r.Ndb_exp.postcards;
  Report.kvi "postcard bytes" r.Ndb_exp.postcard_bytes;
  Report.sub "overhead scaling with path length (per application packet)";
  Printf.printf "  %6s %22s %26s\n" "hops" "TPP in-band bytes" "postcard bytes (+packets)";
  List.iter
    (fun h ->
      Printf.printf "  %6d %22d %18d (+%d)\n" h
        (Prog.section_size (Trace.make ~max_hops:h))
        (h * Postcard.postcard_bytes)
        h)
    [ 1; 2; 3; 5; 7 ];
  Report.sub "paper expectations";
  Report.expect ~what:"divergence localised to the bad hop"
    ~paper:"per-packet forwarding visibility"
    ~measured:
      (match r.Ndb_exp.mismatches with
      | Verify.Wrong_switch { hop; expected; got } :: _ ->
        Printf.sprintf "hop %d: sw%d instead of sw%d" hop got expected
      | _ -> "not found")
    (List.exists
       (function Verify.Wrong_switch _ -> true | _ -> false)
       r.Ndb_exp.mismatches);
  Report.expect ~what:"culprit entry identified" ~paper:"matched entry id on packet"
    ~measured:
      (match r.Ndb_exp.culprit_entry with Some e -> string_of_int e | None -> "-")
    (r.Ndb_exp.culprit_entry = Some 999);
  Report.expect ~what:"no extra packets vs one per packet per hop"
    ~paper:"ndb creates truncated copies"
    ~measured:(Printf.sprintf "%d postcards for %d packets" r.Ndb_exp.postcards
                 r.Ndb_exp.traced_packets)
    (r.Ndb_exp.postcards = 3 * r.Ndb_exp.traced_packets)

(* --- E7: §3.3 overheads --------------------------------------------------- *)

let e7 () =
  Report.section "E7 / §3.3" "TPP byte overhead and the line-rate cycle budget";
  let rows = Overheads.rows ~hops:5 [ 1; 2; 3; 4; 5; 8 ] in
  Printf.printf
    "  %6s %12s %12s %14s %16s %8s %8s\n" "instrs" "instr bytes" "header" "mem/hop (B)"
    "section@5hops" "cycles" "budget";
  List.iter
    (fun r ->
      Printf.printf "  %6d %12d %12d %14d %16d %8d %8s\n" r.Overheads.instructions
        r.Overheads.instr_bytes r.Overheads.header_bytes r.Overheads.perhop_memory_bytes
        r.Overheads.section_bytes r.Overheads.cycles
        (if r.Overheads.fits_budget then "fits" else "OVER"))
    rows;
  let lr = Overheads.line_rate_analysis () in
  Report.sub "line-rate context (paper footnote 2 and §3.3)";
  Report.kv "switch"
    (Printf.sprintf "%d x %d GbE, min frame %dB (incl. preamble+IFG)" lr.Overheads.ports
       lr.Overheads.port_gbps lr.Overheads.min_frame_bytes);
  Report.kv "packets/second"
    (Printf.sprintf "%.2e (paper: ~1 billion)" lr.Overheads.packets_per_sec);
  Report.kv "time per packet per port pipeline"
    (Printf.sprintf "%.1f ns = %.0f cycles at 1 GHz" lr.Overheads.ns_per_packet
       lr.Overheads.ns_per_packet);
  Report.kv "TCPU instructions/second (all ports)"
    (Printf.sprintf "%.2e" lr.Overheads.tcpu_instr_per_sec);
  Report.sub "paper expectations";
  let five = List.nth rows 4 in
  Report.expect ~what:"5 instructions cost 20 bytes" ~paper:"20 bytes/packet"
    ~measured:(Printf.sprintf "%d bytes" five.Overheads.instr_bytes)
    (five.Overheads.instr_bytes = 20);
  Report.expect ~what:"5-instruction TPP under cut-through budget"
    ~paper:"< 300 cycles"
    ~measured:(Printf.sprintf "%d cycles" five.Overheads.cycles)
    five.Overheads.fits_budget;
  Report.expect ~what:"~1 billion packets/second at line rate"
    ~paper:"10^9 pkts/s"
    ~measured:(Printf.sprintf "%.2e" lr.Overheads.packets_per_sec)
    (lr.Overheads.packets_per_sec > 0.9e9)

(* --- E8: ablations ---------------------------------------------------------- *)

let e8 () =
  Report.section "E8 / ablation" "why CEXEC targeting and CSTORE matter";
  Report.sub "(a) phase-3 update with and without the CEXEC guard";
  let rows = Ablation.cexec_targeting () in
  Printf.printf "  %-10s %14s %20s %20s\n" "switch" "capacity kbps" "CEXEC-guarded reg"
    "unguarded reg";
  List.iter
    (fun r ->
      Printf.printf "  sw%-8d %14d %20d %20d\n" r.Ablation.switch_id
        r.Ablation.capacity_kbps r.Ablation.targeted_kbps r.Ablation.broadcast_kbps)
    rows;
  let target_ok =
    List.for_all
      (fun r ->
        if r.Ablation.switch_id = 2 then r.Ablation.targeted_kbps = 2000
        else r.Ablation.targeted_kbps = r.Ablation.capacity_kbps)
      rows
  in
  let broadcast_clobbers =
    List.for_all (fun r -> r.Ablation.broadcast_kbps = 2000) rows
  in
  Report.expect ~what:"CEXEC updates only the bottleneck"
    ~paper:"executes on one switch" ~measured:"only sw2 changed" target_ok;
  Report.expect ~what:"without CEXEC every link is clobbered"
    ~paper:"(motivates CEXEC)" ~measured:"all registers overwritten"
    broadcast_clobbers;
  Report.sub "(b) CSTORE vs plain STORE under three concurrent writers";
  let r = Ablation.cstore_vs_store () in
  Printf.printf "  %-26s %16s %16s\n" "" "CSTORE" "STORE";
  Printf.printf "  %-26s %16.4f %16.4f\n" "converged mean R/C" r.Ablation.with_cstore_mean
    r.Ablation.without_cstore_mean;
  Printf.printf "  %-26s %16.4f %16.4f\n" "converged stddev"
    r.Ablation.with_cstore_stddev r.Ablation.without_cstore_stddev;
  Report.kvf "CSTORE updates rejected (%)" r.Ablation.updates_rejected_pct;
  Report.expect ~what:"CSTORE detects concurrent writers"
    ~paper:"linearizable conditional store"
    ~measured:(Printf.sprintf "%.1f%% of updates rejected" r.Ablation.updates_rejected_pct)
    (r.Ablation.updates_rejected_pct > 0.0);
  Report.expect ~what:"both variants still converge (races are benign here)"
    ~paper:"congestion control tolerates races"
    ~measured:(Printf.sprintf "means %.3f vs %.3f" r.Ablation.with_cstore_mean
                 r.Ablation.without_cstore_mean)
    (approx ~tolerance:0.15 r.Ablation.with_cstore_mean r.Ablation.without_cstore_mean)

(* --- E9: flow completion times (extension) -------------------------------- *)

let e9 () =
  Report.section "E9 / extension"
    "flow completion times: RCP* vs TCP Reno vs AIMD (the paper's motivation)";
  let p = Fct.default in
  Report.kv "workload"
    (Printf.sprintf
       "Poisson arrivals %.0f/s, Pareto sizes (mean %.0f kB, shape %.1f), 10 Mb/s \
        bottleneck, %.0f s"
       p.Fct.arrivals_per_sec
       (p.Fct.mean_flow_bytes /. 1e3)
       p.Fct.pareto_shape
       (Time_ns.to_sec_f p.Fct.duration));
  let star = Fct.run Fct.Rcp_star_ctl p in
  let aimd = Fct.run Fct.Aimd_ctl p in
  let tcp = Fct.run Fct.Tcp_ctl p in
  let line name (r : Fct.result) =
    Printf.printf "  %-12s %4d/%-4d %10.3f %10.3f %10.3f %10.3f %8d\n" name
      r.Fct.completed r.Fct.started
      (Tpp_util.Stats.mean r.Fct.short_fct)
      (Tpp_util.Stats.percentile r.Fct.short_fct 95.0)
      (Tpp_util.Stats.mean r.Fct.long_fct)
      (Tpp_util.Stats.percentile r.Fct.long_fct 95.0)
      r.Fct.bottleneck_drops
  in
  Printf.printf "\n  %-12s %9s %10s %10s %10s %10s %8s\n" "controller" "done"
    "short mean" "short p95" "long mean" "long p95" "drops";
  Printf.printf "  %-12s %9s %10s %10s %10s %10s %8s\n" "" "" "(s)" "(s)" "(s)" "(s)" "";
  line "RCP*(TPP)" star;
  line "AIMD" aimd;
  line "TCP (Reno)" tcp;
  let s_star = Tpp_util.Stats.mean star.Fct.short_fct in
  let s_aimd = Tpp_util.Stats.mean aimd.Fct.short_fct in
  let s_tcp = Tpp_util.Stats.mean tcp.Fct.short_fct in
  Report.sub "expectations (RCP's motivation: flows converge to fair share fast)";
  Report.expect ~what:"short flows finish faster under RCP*"
    ~paper:"RCP helps flows finish quickly"
    ~measured:
      (Printf.sprintf "%.3fs vs %.3fs AIMD / %.3fs TCP" s_star s_aimd s_tcp)
    (s_star < s_aimd && s_star < s_tcp);
  Report.expect ~what:"all controllers complete the workload"
    ~paper:"same offered schedule"
    ~measured:(Printf.sprintf "%d / %d / %d of %d" star.Fct.completed
                 aimd.Fct.completed tcp.Fct.completed star.Fct.started)
    (star.Fct.completed > 0 && aimd.Fct.completed > 0 && tcp.Fct.completed > 0)

(* --- E10: fat-tree fabric (extension) --------------------------------------- *)

let e10 () =
  Report.section "E10 / extension"
    "TPP tasks on a k=4 fat-tree: fabric-wide sweep + path verification";
  let r = Fabric.run () in
  Report.kvi "switches in the fabric" r.Fabric.switches_total;
  Report.kvi "switches the sweep observed" r.Fabric.switches_observed;
  Report.kv "note"
    "ECMP: flows hash across equal-cost up-links; the verifier replays the same hash";
  Report.sub "path tracing";
  Report.kvi "packets traced" r.Fabric.traced;
  Report.kvi "traces matching control-plane intent" r.Fabric.verified;
  List.iter
    (fun (len, count) ->
      Report.kv (Printf.sprintf "paths crossing %d switch(es)" len)
        (Printf.sprintf "%d packets" count))
    r.Fabric.path_length_counts;
  Report.sub "hotspot localisation from sweep data";
  Report.kvi "predicted congested switch (offered > capacity)" r.Fabric.hotspot_expected;
  Report.kvi "busiest switch per sweep" r.Fabric.hotspot_found;
  Report.kvf "its mean queue (bytes)" r.Fabric.hotspot_mean_queue;
  Report.kvf "runner-up mean queue (bytes)" r.Fabric.runner_up_mean_queue;
  Report.sub "expectations";
  Report.expect ~what:"every traced packet verified"
    ~paper:"dataplane = control plane here"
    ~measured:(Printf.sprintf "%d of %d" r.Fabric.verified r.Fabric.traced)
    (r.Fabric.traced > 0 && r.Fabric.verified = r.Fabric.traced);
  Report.expect ~what:"paths fit datacenter hop counts"
    ~paper:"typically 5-7 hops max"
    ~measured:
      (String.concat ","
         (List.map (fun (l, _) -> string_of_int l) r.Fabric.path_length_counts))
    (List.for_all (fun (l, _) -> l >= 1 && l <= 5) r.Fabric.path_length_counts);
  Report.expect ~what:"sweep localises the hotspot"
    ~paper:"low-latency visibility into queues"
    ~measured:
      (Printf.sprintf "sw%d (planted sw%d), %.0fB vs %.0fB" r.Fabric.hotspot_found
         r.Fabric.hotspot_expected r.Fabric.hotspot_mean_queue
         r.Fabric.runner_up_mean_queue)
    (r.Fabric.hotspot_found = r.Fabric.hotspot_expected
    && r.Fabric.hotspot_mean_queue > 2.0 *. r.Fabric.runner_up_mean_queue)

(* --- E11: visibility ladder (extension) ------------------------------------- *)

let e11 () =
  Report.section "E11 / extension"
    "congestion control vs dataplane visibility: loss-only, ECN bit, TPP registers";
  Report.kv "setup"
    "3 flows on a 10 Mb/s bottleneck (150 kB buffer, ECN mark at 30 kB), 15 s";
  let r = Cc_compare.run () in
  let line (o : Cc_compare.outcome) =
    Printf.printf "  %-24s %12.0f %12.0f %10.2f %8d %12.1f\n" o.Cc_compare.name
      o.Cc_compare.queue_mean o.Cc_compare.queue_p95
      (o.Cc_compare.goodput_bps /. 1e6)
      o.Cc_compare.drops o.Cc_compare.latency_p95_ms
  in
  Printf.printf "\n  %-24s %12s %12s %10s %8s %12s\n" "controller" "q mean (B)"
    "q p95 (B)" "goodput" "drops" "lat p95 (ms)";
  line r.Cc_compare.aimd;
  line r.Cc_compare.dctcp;
  line r.Cc_compare.rcp_star;
  Report.plot ~y_label:"bottleneck queue (bytes)"
    [ r.Cc_compare.aimd.Cc_compare.queue_series;
      r.Cc_compare.dctcp.Cc_compare.queue_series;
      r.Cc_compare.rcp_star.Cc_compare.queue_series ];
  Report.sub "expectations (more visibility -> smaller standing queue)";
  let q o = o.Cc_compare.queue_mean in
  Report.expect ~what:"AIMD fills the buffer to sense congestion"
    ~paper:"loss-based control needs full queues"
    ~measured:(Printf.sprintf "%.0f B mean, %d drops" (q r.Cc_compare.aimd)
                 r.Cc_compare.aimd.Cc_compare.drops)
    (q r.Cc_compare.aimd > 2.0 *. q r.Cc_compare.dctcp
    && r.Cc_compare.aimd.Cc_compare.drops > 0);
  Report.expect ~what:"DCTCP hovers near the marking threshold"
    ~paper:"ECN gives 1 bit early warning"
    ~measured:(Printf.sprintf "%.0f B mean vs 30000 B threshold" (q r.Cc_compare.dctcp))
    (q r.Cc_compare.dctcp < 60_000.0);
  Report.expect ~what:"RCP* runs the smallest queue"
    ~paper:"TPPs read the whole queue register"
    ~measured:(Printf.sprintf "%.0f B mean" (q r.Cc_compare.rcp_star))
    (q r.Cc_compare.rcp_star <= q r.Cc_compare.dctcp
    && q r.Cc_compare.rcp_star < q r.Cc_compare.aimd);
  Report.expect ~what:"all three keep the link busy"
    ~paper:"same offered capacity"
    ~measured:(Printf.sprintf "%.1f / %.1f / %.1f Mb/s"
                 (r.Cc_compare.aimd.Cc_compare.goodput_bps /. 1e6)
                 (r.Cc_compare.dctcp.Cc_compare.goodput_bps /. 1e6)
                 (r.Cc_compare.rcp_star.Cc_compare.goodput_bps /. 1e6))
    (List.for_all
       (fun o -> o.Cc_compare.goodput_bps > 6.0e6)
       [ r.Cc_compare.aimd; r.Cc_compare.dctcp; r.Cc_compare.rcp_star ])

(* --- E12: consistent updates (extension) ------------------------------------ *)

let e12 () =
  Report.section "E12 / extension"
    "witnessing inconsistent forwarding during a staged routing update";
  Report.kv "setup"
    "diamond; traced packets every 2 ms; switch-at-a-time route update at t=200 ms";
  let r = Consistent.run () in
  Report.kvi "packets traced" r.Consistent.total;
  Report.kvi
    (Printf.sprintf "version-pure at v%d (before)" r.Consistent.old_version)
    r.Consistent.pure_old;
  Report.kvi
    (Printf.sprintf "version-pure at v%d (after)" r.Consistent.new_version)
    r.Consistent.pure_new;
  Report.kvi "mixed-version packets (straddlers)" r.Consistent.mixed;
  Report.kv "example straddler saw versions"
    (String.concat "," (List.map string_of_int r.Consistent.example_mixture));
  Report.sub "expectations";
  Report.expect ~what:"update transient individually visible"
    ~paper:"rules change constantly; updates are not atomic"
    ~measured:(Printf.sprintf "%d straddlers" r.Consistent.mixed)
    (r.Consistent.mixed > 0);
  Report.expect ~what:"every straddler sent during the update window"
    ~paper:"per-packet attribution"
    ~measured:(Printf.sprintf "%d of %d" r.Consistent.mixed_during_window
                 r.Consistent.mixed)
    (r.Consistent.mixed_during_window = r.Consistent.mixed);
  Report.expect ~what:"steady state is version-pure"
    ~paper:"(sanity)"
    ~measured:(Printf.sprintf "%d + %d + %d = %d" r.Consistent.pure_old
                 r.Consistent.mixed r.Consistent.pure_new r.Consistent.total)
    (r.Consistent.pure_old > 0 && r.Consistent.pure_new > 0
    && r.Consistent.pure_old + r.Consistent.pure_new + r.Consistent.mixed
       = r.Consistent.total)

(* --- E13: fault localisation (extension) ------------------------------------- *)

let e13 () =
  Report.section "E13 / extension"
    "end-host fault localisation: a link dies, probes find it";
  Report.kv "setup"
    "k=4 ECMP fat-tree; 16 probe circuits at 10 ms; one agg->core link fails at t=1s";
  let r = Faults.run () in
  Report.kvi "probe circuits" r.Faults.circuits;
  Report.kv "failed link (ground truth)"
    (Format.asprintf "%a" Faultfind.pp_link r.Faults.failed_link);
  Report.kvi "circuits that lost their echoes" r.Faults.failing_circuits;
  Report.kvf "detection latency (ms)" r.Faults.detection_ms;
  Report.kv "suspect links"
    (String.concat ", "
       (List.map (Format.asprintf "%a" Faultfind.pp_link) r.Faults.suspects));
  Report.sub "expectations";
  Report.expect ~what:"failure detected within a few probe periods"
    ~paper:"low-latency fault diagnosis"
    ~measured:(Printf.sprintf "%.0f ms (probe period 10 ms)" r.Faults.detection_ms)
    (r.Faults.detection_ms < 100.0);
  Report.expect ~what:"true link among suspects"
    ~paper:"localisation from end-hosts"
    ~measured:(Format.asprintf "%a" Faultfind.pp_link r.Faults.failed_link)
    r.Faults.true_link_in_suspects;
  Report.expect ~what:"suspect set is small"
    ~paper:"(intersection of failing paths)"
    ~measured:(Printf.sprintf "%d links" (List.length r.Faults.suspects))
    (List.length r.Faults.suspects <= 3 && r.Faults.suspects <> [])

(* --- E14: streaming telemetry (extension) ------------------------------------- *)

let e14 () =
  Report.section "E14 / extension"
    "streaming telemetry: binary postcards -> sketches -> reacting controller";
  Report.kv "setup"
    "k=4 ECMP fat-tree; one agg->core link turns 50% lossy at t=1s; 1 ms control loop";
  let r = Telemetry_exp.run () in
  Report.kvi "hosts probing" r.Telemetry_exp.hosts;
  Report.kvf "healthy probe RTT (ms)" r.Telemetry_exp.rtt_ms;
  Report.kv "failed link (ground truth)"
    (let n, p = r.Telemetry_exp.failed_link in
     Printf.sprintf "node %d port %d" n p);
  Report.kvi "binary postcards" r.Telemetry_exp.cards;
  Report.kvi "postcards dropped (sink overflow)" r.Telemetry_exp.cards_dropped;
  Report.kvi "fault cards" r.Telemetry_exp.fault_cards;
  Report.kvi "probe retry cards" r.Telemetry_exp.probe_retries;
  Report.kvi "probe failure cards" r.Telemetry_exp.probe_failures;
  Report.kvf "fault -> first telemetry evidence (ms)" r.Telemetry_exp.detect_ms;
  Report.kvf "fault -> drain installed (ms)" r.Telemetry_exp.react_ms;
  Report.kvf "detect latency (RTTs)" r.Telemetry_exp.detect_rtts;
  Report.kvf "react latency (RTTs)" r.Telemetry_exp.react_rtts;
  Report.kvi "hop cards on drained link after settling"
    r.Telemetry_exp.failed_hops_after_drain;
  Report.sub "expectations";
  Report.expect ~what:"the lossy link is the one drained"
    ~paper:"controller reacts to telemetry"
    ~measured:
      (String.concat ", "
         (List.map
            (fun (n, p) -> Printf.sprintf "node %d port %d" n p)
            r.Telemetry_exp.drained))
    (List.mem r.Telemetry_exp.failed_link r.Telemetry_exp.drained);
  Report.expect ~what:"reaction at RTT timescales, not control-protocol ones"
    ~paper:"ms-scale reaction"
    ~measured:(Printf.sprintf "%.1f ms" r.Telemetry_exp.react_ms)
    (r.Telemetry_exp.react_ms < 200.0);
  Report.expect ~what:"flows hash away from the drained link"
    ~paper:"ECMP group rewrite"
    ~measured:
      (Printf.sprintf "%d late hop cards" r.Telemetry_exp.failed_hops_after_drain)
    (r.Telemetry_exp.failed_hops_after_drain
     < r.Telemetry_exp.cards / 100);
  Report.expect ~what:"no telemetry lost" ~paper:"bounded collector memory"
    ~measured:(Printf.sprintf "%d dropped" r.Telemetry_exp.cards_dropped)
    (r.Telemetry_exp.cards_dropped = 0)

(* --- dispatch ----------------------------------------------------------------- *)

let all = [ ("e1", Demos.figure1); ("e2", e2); ("e3", Demos.table1);
            ("e4", Demos.table2); ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8);
            ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
            ("e14", e14) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--benches" args then begin
    Report.benches ();
    exit 0
  end;
  let micro = List.mem "--micro" args in
  let strict = List.mem "--check" args in
  if List.mem "--csv" args then Report.csv_dir := Some "bench_csv";
  let wanted =
    List.filter
      (fun a -> a <> "--micro" && a <> "--csv" && a <> "--check" && a <> "--")
      args
  in
  Printf.printf
    "Tiny Packet Programs (HotNets'13) — experiment harness, library v%s\n" version;
  let to_run =
    if wanted = [] then all
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) all with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (known: e1..e8)\n" name;
            exit 2)
        wanted
  in
  List.iter (fun (_, f) -> f ()) to_run;
  if micro then Micro.run ();
  let diverged = Report.summary () in
  (* --check makes the harness CI-friendly: nonzero exit when any
     paper-vs-measured expectation diverges. *)
  if strict && diverged > 0 then exit 1
