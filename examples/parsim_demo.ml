(* Deterministic multicore simulation with tpp_parsim.

   The same k=4 ECMP fat-tree and the same TPP-tagged traffic run twice:
   once on the plain sequential engine, once sharded across 2 domains by
   the conservative PDES engine (DESIGN.md §8). The point of the demo is
   the last line: event, delivery and drop counts are bit-identical, so
   a parallel run is a drop-in replacement for a sequential one — only
   the wall clock changes. *)

open Tpp

let collect_src = "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\n"
let horizon = Time_ns.ms 50

let build eng =
  let ft =
    Topology.fat_tree eng ~ecmp:true ~k:4 ~bps:1_000_000_000
      ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* Each host streams to the host one pod over. Uniform frame sizes keep
   same-instant events commutative — the determinism precondition. *)
let traffic ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src) in
  let payload = Bytes.create 600 in
  for i = 0 to n - 1 do
    let src = hosts.(i) in
    if owns src.Net.node_id then
      for j = 0 to 199 do
        Engine.at eng
          (1 + (i * 13) + (j * 3_000))
          (fun () ->
            let dst = hosts.((i + 4) mod n) in
            let frame =
              Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
                ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:(5000 + i)
                ~dst_port:9 ~tpp:(Prog.copy tpp) ~payload ()
            in
            Net.host_send net src frame)
      done
  done

let drops ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.fold_left (fun a (_, sw) -> a + (Switch.state sw).Switch_state.drops) 0

let () =
  (* Sequential reference. *)
  let eng = Engine.create () in
  let net = build eng in
  traffic ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let seq_wall = Unix.gettimeofday () -. t0 in
  let seq_events = Engine.events_processed eng in
  let seq_delivered = Net.frames_delivered net in
  let seq_drops = drops ~owns:(fun _ -> true) net in

  (* Same workload, sharded across 2 domains. *)
  let t0 = Unix.gettimeofday () in
  let stats, shard_drops =
    Parsim.run ~shards:2 ~until:horizon ~build
      ~setup:(fun ~shard:_ ~owns net -> traffic ~owns net)
      ~collect:(fun ~shard:_ ~owns net -> drops ~owns net)
      ()
  in
  let par_wall = Unix.gettimeofday () -. t0 in
  let par_drops = Array.fold_left ( + ) 0 shard_drops in

  let plan = Parsim.Plan.make net ~shards:2 in
  Printf.printf "partition: %d cut links, lookahead %dns, shard weights [%s]\n"
    plan.Parsim.Plan.cut_links plan.Parsim.Plan.lookahead
    (String.concat "; "
       (Array.to_list (Array.map string_of_int plan.Parsim.Plan.shard_weight)));
  Printf.printf "sequential: %d events, %d delivered, %d drops  (%.3fs)\n"
    seq_events seq_delivered seq_drops seq_wall;
  Printf.printf
    "2 shards:   %d events, %d delivered, %d drops  (%.3fs, %d rounds, %d \
     boundary frames)\n"
    stats.Parsim.events stats.Parsim.delivered par_drops par_wall
    stats.Parsim.rounds stats.Parsim.messages;
  if
    seq_events = stats.Parsim.events
    && seq_delivered = stats.Parsim.delivered
    && seq_drops = par_drops
  then print_endline "deterministic: parallel run identical to sequential"
  else begin
    print_endline "DIVERGED: parallel run does not match sequential!";
    exit 1
  end
