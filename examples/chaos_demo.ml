(* Chaos under a deterministic schedule.

   A k=4 ECMP fat-tree carries TPP-tagged traffic while a seeded
   Tpp.Fault schedule abuses it: one aggregation->core cable flaps, a
   host access cable is 30% lossy with occasional bit corruption, a
   core switch freezes and reboots mid-run, and the flapping uplink
   later runs degraded. Three points:

   1. The injector is deterministic: the same seed gives the same
      chaos, bit for bit, whether the run is sequential or sharded
      across 2 domains — the parallel engine stays a drop-in
      replacement with faults active.

   2. End-host retry hardening (Probe.Reliable) keeps a measurement
      circuit alive through a lossy link that starves one-shot probes.

   3. Faultfind still localises the failed cable from end hosts alone
      under permanent, flapping, dual and lossy failures
      (Tpp_experiments.Faults scenario matrix). *)

open Tpp

let horizon = Time_ns.ms 400
let seed = 1337

let collect_src = "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\n"

let build eng =
  let ft =
    Topology.fat_tree eng ~ecmp:true ~k:4 ~bps:1_000_000_000
      ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* Rebuilt identically on every shard replica: all randomness derives
   from [seed], so this is a pure description of the chaos. *)
let schedule net =
  let f = Fault.create ~seed in
  (* k=4 fat-tree node order: cores 0-3, then aggs 4-11. An agg's down
     ports are 0-1 (edges), up ports 2-3 (cores): (4, 2) is an
     agg->core cable. The lossy rule goes on a host access cable, which
     is guaranteed traffic in both directions regardless of how ECMP
     hashes flows across the core. *)
  let up0 = (4, 2) in
  let hosts = Array.of_list (Net.hosts net) in
  let lossy_access = (hosts.(2).Net.node_id, 0) in
  Fault.flap f ~from_:(Time_ns.ms 50) ~until_:(Time_ns.ms 250)
    ~period:(Time_ns.ms 20) ~down_for:(Time_ns.ms 8) up0;
  Fault.lossy f ~from_:(Time_ns.ms 60) ~until_:(Time_ns.ms 300) ~drop:0.3
    ~corrupt:0.05 lossy_access;
  Fault.freeze f ~from_:(Time_ns.ms 120) ~until_:(Time_ns.ms 160) 0;
  Fault.degrade f ~from_:(Time_ns.ms 260) ~until_:(Time_ns.ms 350)
    ~rate_factor:0.25 ~extra_delay:(Time_ns.us 50) up0;
  Fault.attach f net;
  f

let traffic ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src) in
  let payload = Bytes.create 400 in
  for i = 0 to n - 1 do
    let src = hosts.(i) in
    if owns src.Net.node_id then
      for j = 0 to 299 do
        Engine.at eng
          (1 + (i * 17) + (j * 1_000_000))
          (fun () ->
            let dst = hosts.((i + 4) mod n) in
            let frame =
              Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
                ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:(5000 + i)
                ~dst_port:9 ~tpp:(Prog.copy tpp) ~payload ()
            in
            Net.host_send net src frame)
      done
  done

let zero_stats =
  {
    Fault.lost_down = 0;
    dropped = 0;
    corrupt_header = 0;
    corrupt_fcs = 0;
    frozen_arrivals = 0;
    restarts = 0;
  }

let sum_stats (a : Fault.stats) (b : Fault.stats) =
  {
    Fault.lost_down = a.Fault.lost_down + b.Fault.lost_down;
    dropped = a.Fault.dropped + b.Fault.dropped;
    corrupt_header = a.Fault.corrupt_header + b.Fault.corrupt_header;
    corrupt_fcs = a.Fault.corrupt_fcs + b.Fault.corrupt_fcs;
    frozen_arrivals = a.Fault.frozen_arrivals + b.Fault.frozen_arrivals;
    restarts = a.Fault.restarts + b.Fault.restarts;
  }

let () =
  (* 1. Determinism: identical workload + schedule, sequential vs
     2 shards. *)
  let eng = Engine.create () in
  let net = build eng in
  let fault = schedule net in
  traffic ~owns:(fun _ -> true) net;
  Engine.run eng ~until:horizon;
  let seq_events = Engine.events_processed eng in
  let seq_delivered = Net.frames_delivered net in
  let seq_faults = Fault.stats fault in
  Printf.printf "sequential: %d events, %d delivered\n  %s\n" seq_events
    seq_delivered
    (Format.asprintf "%a" Fault.pp_stats seq_faults);

  let faults = Array.make 2 None in
  let stats, shard_faults =
    Parsim.run ~shards:2 ~until:horizon ~build
      ~setup:(fun ~shard ~owns net ->
        faults.(shard) <- Some (schedule net);
        traffic ~owns net)
      ~collect:(fun ~shard ~owns:_ _ -> Fault.stats (Option.get faults.(shard)))
      ()
  in
  let par_faults = Array.fold_left sum_stats zero_stats shard_faults in
  Printf.printf "2 shards:   %d events, %d delivered\n  %s\n"
    stats.Parsim.events stats.Parsim.delivered
    (Format.asprintf "%a" Fault.pp_stats par_faults);
  let identical =
    (* The wipe events at freeze end run once per layout; everything
       else must agree exactly. *)
    seq_events = stats.Parsim.events
    && seq_delivered = stats.Parsim.delivered
    && seq_faults = par_faults
  in
  if identical then
    print_endline "deterministic: chaos identical, sequential vs sharded\n"
  else begin
    print_endline "DIVERGED: faulted parallel run does not match sequential!";
    exit 1
  end;

  (* 2. Reliable probing through the same chaos. *)
  let eng = Engine.create () in
  let net = build eng in
  let _fault = schedule net in
  let hosts = Array.of_list (Net.hosts net) in
  let src = Stack.create net hosts.(0) and dst = hosts.(8) in
  let sink = Stack.create net dst in
  Probe.install_echo sink;
  let reliable =
    Probe.Reliable.create ~timeout:(Time_ns.ms 2) ~retries:4 ~backoff:1.5 src
  in
  let probe = Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src) in
  Engine.every eng ~period:(Time_ns.ms 5) ~until:horizon (fun () ->
      ignore (Probe.Reliable.send reliable ~dst ~tpp:(Prog.copy probe) ()));
  Engine.run eng ~until:(horizon + Time_ns.ms 50);
  let r = Probe.Reliable.stats reliable in
  Printf.printf
    "reliable probes: %d sent as %d transmissions -> %d answered, %d \
     abandoned, %d late echoes\n\n"
    r.Probe.Reliable.probes r.Probe.Reliable.transmissions
    r.Probe.Reliable.replies r.Probe.Reliable.failures r.Probe.Reliable.late;

  (* 3. Localisation matrix. *)
  let matrix = Faults.run_matrix ~seed:7 () in
  print_endline "fault localisation matrix (Tpp_experiments.Faults):";
  List.iter
    (fun (r : Faults.scenario_result) ->
      Printf.printf
        "  %-12s detection %6.1f ms, %2d/%d circuits degraded, %d suspects, \
         localised: %b\n"
        (Faults.scenario_name r.Faults.sc_scenario)
        r.Faults.sc_detection_ms r.Faults.sc_degraded_circuits
        r.Faults.sc_circuits
        (List.length r.Faults.sc_suspects)
        r.Faults.sc_localised)
    matrix;
  if List.for_all (fun (r : Faults.scenario_result) -> r.Faults.sc_localised) matrix
  then print_endline "all scenarios localised"
  else begin
    print_endline "LOCALISATION FAILED";
    exit 1
  end
