(* The compiled TCPU backend (lib/asic/compile.ml) must be
   architecturally indistinguishable from the interpreter: same register
   writes, same faults at the same instruction, same CEXEC/CSTORE and
   stack semantics, same counters. A QCheck differential test holds the
   two backends equal on random programs x random states — including
   fault-heavy programs (out-of-bounds and misaligned packet offsets,
   unmapped switch addresses, odd CSTORE/CEXEC pools, hand-built
   unencodable operands that force the Marshal cache key). Unit tests
   pin the program-cache behaviour: copies share one compilation,
   per-switch hit/miss counters, clear_cache, and domain-safe lookup. *)

open Tpp
module State = Tpp_asic.State
module Tcpu = Tpp_asic.Tcpu
module Compile = Tpp_asic.Compile

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- scenarios: a program plus everything execution depends on ---------- *)

type scenario = {
  program : Instr.t list;
  hop_mode : bool;
  perhop : int;       (* bytes per hop block (hop mode) *)
  mem_words : int;    (* user packet memory, in words *)
  mem_init : int list;
  pool : int list;    (* constant-pool words in front of memory *)
  sp_off : int;       (* initial sp, bytes past base (possibly odd) *)
  hop0 : int;         (* initial hop counter *)
  out_port : int;     (* includes out-of-range ports *)
  sram_init : int list;
  qdepth : int;
  now : int;
}

let show_operand = Format.asprintf "%a" Instr.pp_operand

let show_scenario sc =
  Format.asprintf
    "@[<v>program:@,%a@,\
     mode=%s perhop=%d mem_words=%d pool=[%s] sp_off=%d hop0=%d@,\
     out_port=%d sram=[%s] mem=[%s] qdepth=%d now=%d@]"
    (Format.pp_print_list Instr.pp)
    sc.program
    (if sc.hop_mode then "hop" else "stack")
    sc.perhop sc.mem_words
    (String.concat ";" (List.map string_of_int sc.pool))
    sc.sp_off sc.hop0 sc.out_port
    (String.concat ";" (List.map string_of_int sc.sram_init))
    (String.concat ";" (List.map string_of_int sc.mem_init))
    sc.qdepth sc.now

(* Operands biased toward the interesting edges: mapped/unmapped switch
   addresses, in-range / boundary / out-of-bounds / misaligned packet
   offsets, and the occasional 13-bit value no encoder accepts (those
   exercise the structural cache-key fallback).

   The compile-cache observability registers (Switch:TppCompileHits at
   0x009, Misses at 0x00a) are the one deliberate backend difference:
   the interpreter has no cache to count, so a program reading them sees
   different values by construction. They're excluded here, like they
   are from the determinism fingerprints; a deterministic test below
   covers them under the compiled backend. *)
let dodge_compile_counters a = if a = 0x009 || a = 0x00a then 0x008 else a

let gen_operand ~mem_len =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map
            (fun a -> Instr.Sw (dodge_compile_counters a))
            (oneof
               [
                 int_bound 0xFFF;
                 oneofl
                   [
                     0x000; 0x005; 0x008; 0x050; 0x100; 0x105;
                     0x140; 0x145; 0x17F; 0x180; 0x1F0; 0x200; 0x213; 0x800;
                     0x806; 0x87F; 0x880; 0x890; 0xFFF;
                   ];
               ]));
        ( 4,
          map
            (fun o -> Instr.Pkt o)
            (oneof
               [
                 int_bound (mem_len + 8);
                 oneofl [ 0; 1; 2; 3; 4; 7; max 0 (mem_len - 4); mem_len ];
               ]));
        (2, map (fun v -> Instr.Imm v) (int_bound 0xFFF));
        (1, map (fun h -> Instr.Hop h) (int_bound 4));
        (1, return (Instr.Sw 0x1000) (* unencodable: Marshal key path *));
      ])

let gen_binop =
  QCheck.Gen.oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Min; Instr.Max ]

let gen_instr ~mem_len =
  let op = gen_operand ~mem_len in
  QCheck.Gen.(
    frequency
      [
        (1, return Instr.Nop);
        (1, return Instr.Halt);
        (2, map (fun a -> Instr.Push a) op);
        (2, map (fun a -> Instr.Pop a) op);
        (3, map2 (fun a b -> Instr.Load (a, b)) op op);
        (3, map2 (fun a b -> Instr.Store (a, b)) op op);
        (2, map2 (fun a b -> Instr.Mov (a, b)) op op);
        (4, map3 (fun o a b -> Instr.Binop (o, a, b)) gen_binop op op);
        (2, map2 (fun a b -> Instr.Cstore (a, b)) op op);
        (2, map2 (fun a b -> Instr.Cexec (a, b)) op op);
      ])

let gen_scenario =
  QCheck.Gen.(
    int_range 0 8 >>= fun mem_words ->
    int_range 0 2 >>= fun pool_words ->
    let mem_len = 4 * mem_words in
    list_size (int_range 0 12) (gen_instr ~mem_len) >>= fun program ->
    bool >>= fun hop_mode ->
    oneofl [ 4; 8 ] >>= fun perhop ->
    list_repeat mem_words (int_bound 0xFFFF) >>= fun mem_init ->
    list_repeat pool_words (oneofl [ 0; 1; 7; 0xFFF; 0xDEAD; 0xFFFF_FFFF ])
    >>= fun pool ->
    frequency
      [ (4, map (fun v -> v land lnot 3) (int_bound mem_len)); (1, int_bound mem_len) ]
    >>= fun sp_off ->
    int_range 0 2 >>= fun hop0 ->
    oneofl [ -1; 0; 2; 3; 5 ] >>= fun out_port ->
    list_repeat 4 (int_bound 0xFFFF) >>= fun sram_init ->
    int_bound 10_000 >>= fun qdepth ->
    int_bound 1_000_000 >>= fun now ->
    return
      {
        program; hop_mode; perhop; mem_words; mem_init; pool; sp_off; hop0;
        out_port; sram_init; qdepth; now;
      })

let scenario_arbitrary = QCheck.make ~print:show_scenario gen_scenario

(* --- running one scenario under one backend ----------------------------- *)

let build_tpp sc =
  let pool = Bytes.create (4 * List.length sc.pool) in
  List.iteri (fun i v -> Buf.set_u32i pool (4 * i) v) sc.pool;
  let mem_len = 4 * sc.mem_words in
  let tpp =
    if sc.hop_mode then
      Prog.make ~addr_mode:Prog.Hop_addressed ~perhop_len:sc.perhop ~pool
        ~program:sc.program ~mem_len ()
    else Prog.make ~pool ~program:sc.program ~mem_len ()
  in
  List.iteri (fun i v -> Prog.mem_set tpp (tpp.Prog.base + (4 * i)) v) sc.mem_init;
  tpp.Prog.sp <- tpp.Prog.base + sc.sp_off;
  tpp.Prog.hop <- sc.hop0;
  tpp

let build_state sc ~switch_id =
  let st = State.create ~switch_id ~num_ports:4 () in
  State.force_queue_depth st ~port:2 ~bytes:sc.qdepth;
  (State.port st 2).State.Port.capacity_bps <- 10_000_000;
  List.iteri (fun i v -> ignore (State.sram_set st i v)) sc.sram_init;
  st

let build_frame sc =
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
      ~src_port:1 ~dst_port:2 ~tpp:(build_tpp sc) ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- sc.out_port;
  frame.Frame.meta.Meta.in_port <- 1;
  frame.Frame.meta.Meta.matched_entry <- 55;
  frame

let res_digest = function
  | None -> None
  | Some r ->
    Some
      ( r.Tcpu.executed,
        r.Tcpu.cycles,
        r.Tcpu.stopped_by_cexec,
        Option.map Tcpu.fault_message r.Tcpu.fault )

let state_digest st =
  ( List.init 16 (fun i -> Option.value ~default:(-1) (State.sram_get st i)),
    (st.State.tpp_execs, st.State.tpp_faults, st.State.tpp_cycles) )

(* Two hops through two switches: the second hop also covers hop-block
   addressing past hop 0 and the faulted-TPP-is-inert path. *)
let run_scenario backend sc =
  let frame = build_frame sc in
  let st1 = build_state sc ~switch_id:3 in
  let st2 = build_state sc ~switch_id:4 in
  let r1 = Tcpu.execute ~backend st1 ~now:sc.now ~frame in
  let r2 = Tcpu.execute ~backend st2 ~now:(sc.now + 777) ~frame in
  let tpp = Option.get frame.Frame.tpp in
  ( res_digest r1,
    res_digest r2,
    Prog.words tpp,
    tpp.Prog.sp,
    tpp.Prog.hop,
    tpp.Prog.faulted,
    state_digest st1,
    state_digest st2 )

let show_digest (r1, r2, words, sp, hop, faulted, (sram1, c1), (sram2, c2)) =
  let show_res = function
    | None -> "none"
    | Some (e, c, s, f) ->
      Printf.sprintf "exec=%d cyc=%d cexec=%b fault=%s" e c s
        (Option.value ~default:"-" f)
  in
  let ints l = String.concat ";" (List.map string_of_int l) in
  let counters (e, f, c) = Printf.sprintf "execs=%d faults=%d cycles=%d" e f c in
  Printf.sprintf
    "hop1[%s] hop2[%s] words=[%s] sp=%d hop=%d faulted=%b\n\
    \  sw1: sram=[%s] %s\n\
    \  sw2: sram=[%s] %s"
    (show_res r1) (show_res r2) (ints words) sp hop faulted (ints sram1)
    (counters c1) (ints sram2) (counters c2)

let prop_backends_agree =
  QCheck.Test.make ~name:"compiled backend == interpreter (random programs)"
    ~count:500 scenario_arbitrary (fun sc ->
      let reference = run_scenario Tcpu.Interpreter sc in
      let compiled = run_scenario Tcpu.Compiled sc in
      if reference = compiled then true
      else
        QCheck.Test.fail_reportf "backends diverge\ninterpreter: %s\ncompiled:    %s"
          (show_digest reference) (show_digest compiled))

(* The generator finds these eventually; pin them so every run covers
   the canonical fault shapes and the CEXEC/CSTORE stop semantics. *)
let nasty_programs =
  [
    ("oob load", [ Instr.Load (Instr.Sw 0x100, Instr.Pkt 32) ]);
    ("oob store src", [ Instr.Store (Instr.Sw 0x880, Instr.Pkt 4000) ]);
    ("misaligned dst", [ Instr.Mov (Instr.Pkt 2, Instr.Imm 1) ]);
    ("negative-ish offset", [ Instr.Binop (Instr.Add, Instr.Pkt 0xFFC, Instr.Imm 1) ]);
    ("odd cstore pool", [ Instr.Cstore (Instr.Sw 0x880, Instr.Pkt 2) ]);
    ("odd cexec pool", [ Instr.Cexec (Instr.Sw 0x000, Instr.Pkt 6) ]);
    ("imm cstore pool", [ Instr.Cstore (Instr.Sw 0x880, Instr.Imm 0) ]);
    ("sw cexec pool", [ Instr.Cexec (Instr.Sw 0x000, Instr.Sw 0x880) ]);
    ("write stat", [ Instr.Store (Instr.Sw 0x100, Instr.Imm 1) ]);
    ("write meta", [ Instr.Store (Instr.Sw 0x800, Instr.Imm 1) ]);
    ("write imm", [ Instr.Mov (Instr.Imm 1, Instr.Imm 2) ]);
    ("unmapped addr", [ Instr.Load (Instr.Sw 0x050, Instr.Pkt 0) ]);
    ("unencodable addr", [ Instr.Load (Instr.Sw 0x1000, Instr.Pkt 0) ]);
    ("pop empty", [ Instr.Pop (Instr.Sw 0x880) ]);
    ( "push until overflow",
      [
        Instr.Push (Instr.Imm 1); Instr.Push (Instr.Imm 2); Instr.Push (Instr.Imm 3);
      ] );
    ( "cexec stops cleanly",
      [ Instr.Cexec (Instr.Sw 0x000, Instr.Pkt 0); Instr.Mov (Instr.Pkt 0, Instr.Imm 9) ]
    );
    ( "fault mid-program",
      [
        Instr.Mov (Instr.Pkt 0, Instr.Imm 1);
        Instr.Store (Instr.Sw 0x100, Instr.Pkt 0);
        Instr.Mov (Instr.Pkt 4, Instr.Imm 2);
      ] );
  ]

let test_nasty_programs_agree () =
  List.iter
    (fun (name, program) ->
      let sc =
        {
          program; hop_mode = false; perhop = 4; mem_words = 2;
          mem_init = [ 0xFF; 5 ]; pool = []; sp_off = 0; hop0 = 0; out_port = 2;
          sram_init = [ 10; 20; 30; 40 ]; qdepth = 4242; now = 1000;
        }
      in
      let reference = run_scenario Tcpu.Interpreter sc in
      let compiled = run_scenario Tcpu.Compiled sc in
      if reference <> compiled then
        Alcotest.failf "%s diverges\ninterpreter: %s\ncompiled:    %s" name
          (show_digest reference) (show_digest compiled))
    nasty_programs

(* --- the program cache --------------------------------------------------- *)

let make_state () = State.create ~switch_id:3 ~num_ports:4 ()

let frame_with tpp =
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
      ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 2;
  frame

let assemble src =
  match Asm.to_tpp ~mem_len:16 src with
  | Ok tpp -> tpp
  | Error e -> Alcotest.failf "assembly: %s" e

let test_copies_share_one_compilation () =
  Compile.clear_cache ();
  let template = assemble "PUSH [Switch:SwitchID]\nPUSH [Switch:NumPorts]\n" in
  let st = make_state () in
  List.iter
    (fun _ -> ignore (Tcpu.execute st ~now:0 ~frame:(frame_with (Prog.copy template))))
    [ 1; 2; 3 ];
  let stats = Compile.cache_stats () in
  check Alcotest.int "one program compiled" 1 stats.Compile.programs;
  check Alcotest.int "one global miss" 1 stats.Compile.misses;
  check Alcotest.int "per-switch miss" 1 st.State.tpp_compile_misses;
  check Alcotest.int "per-switch hits" 2 st.State.tpp_compile_hits;
  (* The template never executed, yet its shared cell is linked. *)
  check Alcotest.bool "template linked via shared cell" true
    (match Prog.compiled_handle template with
    | Compile.Compiled _ -> true
    | _ -> false)

let test_equal_programs_compile_once () =
  Compile.clear_cache ();
  let a = assemble "ADD [Sram:0], 1\n" in
  let b = assemble "ADD [Sram:0], 1\n" in
  let c = assemble "ADD [Sram:1], 1\n" in
  let ca = Compile.lookup a in
  let cb = Compile.lookup b in
  let cc = Compile.lookup c in
  check Alcotest.bool "identical bytes share compiled code" true (ca == cb);
  check Alcotest.bool "different programs differ" true (ca != cc);
  let stats = Compile.cache_stats () in
  check Alcotest.int "two distinct programs" 2 stats.Compile.programs;
  check Alcotest.int "hits" 1 stats.Compile.hits;
  check Alcotest.int "misses" 2 stats.Compile.misses

let test_compile_counters_are_registers () =
  Compile.clear_cache ();
  let template =
    assemble
      "LOAD [Switch:TppCompileHits], [Packet:0]\n\
       LOAD [Switch:TppCompileMisses], [Packet:4]\n"
  in
  let st = make_state () in
  ignore (Tcpu.execute st ~now:0 ~frame:(frame_with (Prog.copy template)));
  let second = frame_with (Prog.copy template) in
  ignore (Tcpu.execute st ~now:0 ~frame:second);
  check Alcotest.int "misses counted" 1 st.State.tpp_compile_misses;
  check Alcotest.int "hits counted" 1 st.State.tpp_compile_hits;
  let tpp = Option.get second.Frame.tpp in
  check Alcotest.int "program read its own hit" 1 (Prog.mem_get tpp 0);
  check Alcotest.int "program read the miss" 1 (Prog.mem_get tpp 4);
  check Alcotest.int "register mirrors field"
    st.State.tpp_compile_hits
    (State.switch_stat st ~now:0 Vaddr.Switch_stat.Tpp_compile_hits)

let test_clear_cache_keeps_linked_handles () =
  Compile.clear_cache ();
  let template = assemble "ADD [Sram:2], 3\n" in
  let st = make_state () in
  ignore (Tcpu.execute st ~now:0 ~frame:(frame_with (Prog.copy template)));
  Compile.clear_cache ();
  let stats = Compile.cache_stats () in
  check Alcotest.int "empty" 0 stats.Compile.programs;
  check Alcotest.int "hits zeroed" 0 stats.Compile.hits;
  check Alcotest.int "misses zeroed" 0 stats.Compile.misses;
  (* The family's handle survives: execution still works and never
     touches the global cache again. *)
  ignore (Tcpu.execute st ~now:0 ~frame:(frame_with (Prog.copy template)));
  check (Alcotest.option Alcotest.int) "still executes" (Some 6)
    (State.sram_get st 2);
  check Alcotest.int "cache untouched" 0 (Compile.cache_stats ()).Compile.programs

let test_lookup_is_domain_safe () =
  Compile.clear_cache ();
  let src = "MAX [Sram:3], [Link:QueueSize]\nADD [Sram:3], 1\n" in
  let lookup_in_domain () =
    Domain.spawn (fun () ->
        let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 src) in
        Compile.lookup tpp)
  in
  let d1 = lookup_in_domain () and d2 = lookup_in_domain () in
  let c1 = Domain.join d1 and c2 = Domain.join d2 in
  check Alcotest.bool "both domains got the same compilation" true (c1 == c2);
  check Alcotest.int "one entry" 1 (Compile.cache_stats ()).Compile.programs

let test_compile_length () =
  check Alcotest.int "uop per instruction" 2
    (Compile.length (Compile.compile [| Instr.Nop; Instr.Halt |]))

let suite =
  [
    qtest prop_backends_agree;
    Alcotest.test_case "nasty programs agree" `Quick test_nasty_programs_agree;
    Alcotest.test_case "copies share one compilation" `Quick
      test_copies_share_one_compilation;
    Alcotest.test_case "equal programs compile once" `Quick
      test_equal_programs_compile_once;
    Alcotest.test_case "compile counters are registers" `Quick
      test_compile_counters_are_registers;
    Alcotest.test_case "clear_cache keeps linked handles" `Quick
      test_clear_cache_keeps_linked_handles;
    Alcotest.test_case "lookup is domain-safe" `Quick test_lookup_is_domain_safe;
    Alcotest.test_case "compiled length" `Quick test_compile_length;
  ]
