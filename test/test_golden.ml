(* Golden wire-format tests.

   TPPs are a wire protocol: once two implementations exist, encodings
   must never change silently. These tables freeze (a) the 32-bit
   encoding of representative instructions, (b) complete TPP sections,
   and (c) the virtual address of every named statistic. A failure here
   means the wire format changed — that must be a deliberate,
   versioned decision, not an accident. *)

open Tpp

let check = Alcotest.check

(* --- instruction encodings ------------------------------------------------ *)

(* opcode:4 | op1(space:2|value:12) | op2(space:2|value:12) *)
let golden_instructions =
  [
    ("NOP", Instr.Nop, 0x0800_2000l);
    ("HALT", Instr.Halt, 0xE800_2000l);
    ("PUSH [Switch:SwitchID]", Instr.Push (Instr.Sw 0x000), 0x1000_2000l);
    ("PUSH [Queue:QueueSize]", Instr.Push (Instr.Sw 0x140), 0x1050_2000l);
    ("POP [Sram:0]", Instr.Pop (Instr.Sw 0x880), 0x2220_2000l);
    ("LOAD sw->pkt", Instr.Load (Instr.Sw 0x100, Instr.Pkt 8), 0x3040_1008l);
    ("STORE sw<-pkt", Instr.Store (Instr.Sw 0x880, Instr.Pkt 0), 0x4220_1000l);
    ("MOV pkt, imm", Instr.Mov (Instr.Pkt 4, Instr.Imm 99), 0x5401_2063l);
    ("ADD pkt, imm", Instr.Binop (Instr.Add, Instr.Pkt 0, Instr.Imm 1), 0x6400_2001l);
    ("SUB", Instr.Binop (Instr.Sub, Instr.Pkt 0, Instr.Imm 1), 0x7400_2001l);
    ("AND", Instr.Binop (Instr.And, Instr.Pkt 0, Instr.Imm 1), 0x8400_2001l);
    ("OR", Instr.Binop (Instr.Or, Instr.Pkt 0, Instr.Imm 1), 0x9400_2001l);
    ("MIN", Instr.Binop (Instr.Min, Instr.Pkt 0, Instr.Imm 1), 0xA400_2001l);
    ("MAX", Instr.Binop (Instr.Max, Instr.Pkt 0, Instr.Imm 1), 0xB400_2001l);
    ("CSTORE sram, pool", Instr.Cstore (Instr.Sw 0x880, Instr.Pkt 0), 0xC220_1000l);
    ("CEXEC swid, pool", Instr.Cexec (Instr.Sw 0x000, Instr.Pkt 0), 0xD000_1000l);
    ("hop operand", Instr.Push (Instr.Hop 3), 0x1C00_E000l);
  ]

let test_instruction_encodings () =
  List.iter
    (fun (name, instr, expected) ->
      check Alcotest.int32 name expected (Instr.encode instr);
      (* And they decode back. *)
      check Alcotest.bool (name ^ " decodes") true
        (Instr.decode expected = Ok instr))
    golden_instructions

(* --- full TPP section ------------------------------------------------------ *)

let hex_of b =
  String.concat ""
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let test_section_image () =
  (* The Figure 1 probe with 8 bytes of packet memory. *)
  let tpp =
    Result.get_ok
      (Asm.to_tpp ~mem_len:8 "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n")
  in
  let w = Buf.Writer.create () in
  Prog.write w tpp;
  check Alcotest.string "section bytes"
    ("0100" (* version, flags *)
   ^ "0008" (* tpp_len *)
   ^ "0008" (* mem_len *)
   ^ "0000" (* sp *)
   ^ "0000" (* hop *)
   ^ "0000" (* perhop *)
   ^ "0000" (* inner ethertype *)
   ^ "0000" (* base *)
   ^ "10002000" (* PUSH [Switch:SwitchID] *)
   ^ "10502000" (* PUSH [Queue:QueueSize] *)
   ^ "0000000000000000" (* packet memory *))
    (hex_of (Buf.Writer.contents w))

let test_sugared_section_image () =
  let tpp =
    Result.get_ok
      (Asm.to_tpp ~mem_len:0 "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7\n")
  in
  let w = Buf.Writer.create () in
  Prog.write w tpp;
  check Alcotest.string "pool-backed CEXEC"
    ("0100" ^ "0004" ^ "0008" ^ "0008" (* sp = base = pool *)
   ^ "0000" ^ "0000" ^ "0000" ^ "0008" (* base *)
   ^ "d0001000" (* CEXEC [Switch:SwitchID], [Packet:0] *)
   ^ "ffffffff" ^ "00000007")
    (hex_of (Buf.Writer.contents w))

(* --- the address map -------------------------------------------------------- *)

let golden_addresses =
  [
    ("Switch:SwitchID", 0x000); ("Switch:Version", 0x001);
    ("Switch:PacketsSeen", 0x002); ("Switch:BytesSeen", 0x003);
    ("Switch:Drops", 0x004); ("Switch:NumPorts", 0x005);
    ("Switch:TppExecs", 0x006); ("Switch:TppFaults", 0x007);
    ("Switch:ClockNs", 0x008);
    ("Switch:TppCompileHits", 0x009); ("Switch:TppCompileMisses", 0x00a);
    ("Link:QueueSize", 0x100); ("Link:QueuePackets", 0x101);
    ("Link:RxBytes", 0x102); ("Link:TxBytes", 0x103);
    ("Link:RxUtilization", 0x104); ("Link:Drops", 0x105);
    ("Link:AvgQueueSize", 0x106); ("Link:CapacityKbps", 0x107);
    ("Link:TxPackets", 0x108); ("Link:RxPackets", 0x109);
    ("Link:QueueLimit", 0x10a);
    ("Queue:QueueSize", 0x140); ("Queue:QueuePackets", 0x141);
    ("Queue:BytesEnqueued", 0x142); ("Queue:BytesDropped", 0x143);
    ("Queue:Limit", 0x144); ("Queue:QueueID", 0x145);
    ("PacketMetadata:InputPort", 0x800); ("PacketMetadata:OutputPort", 0x801);
    ("PacketMetadata:MatchedEntryID", 0x802);
    ("PacketMetadata:MatchedVersion", 0x803);
    ("PacketMetadata:HopCount", 0x804); ("PacketMetadata:TableHit", 0x805);
    ("PacketMetadata:ArrivalNs", 0x806);
  ]

let test_address_map_frozen () =
  List.iter
    (fun (name, addr) ->
      check Alcotest.int name addr (Result.get_ok (Vaddr.of_name name)))
    golden_addresses;
  (* And the named map contains nothing else unaccounted. *)
  check Alcotest.int "total named statistics" (List.length golden_addresses)
    (List.length (Vaddr.all_named ()))

(* --- a full frame ------------------------------------------------------------ *)

let test_frame_image () =
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_int 0x020000100001) ~dst_mac:(Mac.of_int 0x020000100002)
      ~src_ip:(Ipv4.Addr.of_string "10.0.0.1") ~dst_ip:(Ipv4.Addr.of_string "10.0.0.2")
      ~src_port:0x1111 ~dst_port:0x2222 ~ttl:7 ~payload:(Bytes.of_string "AB") ()
  in
  (* The IPv4 ident comes from a global counter; pin it for the image. *)
  Frame.set_ip_ident frame 0x1234;
  check Alcotest.string "frame bytes"
    ("020000100002" (* dst mac *)
   ^ "020000100001" (* src mac *)
   ^ "0800" (* ethertype *)
   ^ "4500001e1234400007114d990a0000010a000002" (* ipv4, checksum 0x4d99 *)
   ^ "11112222000a0000" (* udp *)
   ^ "4142")
    (hex_of (Frame.serialize frame))

let suite =
  [
    Alcotest.test_case "instruction encodings" `Quick test_instruction_encodings;
    Alcotest.test_case "tpp section image" `Quick test_section_image;
    Alcotest.test_case "sugared section image" `Quick test_sugared_section_image;
    Alcotest.test_case "address map frozen" `Quick test_address_map_frozen;
    Alcotest.test_case "frame image" `Quick test_frame_image;
  ]
