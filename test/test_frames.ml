(* Differential tests for the flat frame representation: the record
   codecs in [Tpp_packet] are the oracle. Flat construction must be
   byte-identical to composing the record writers; in-place patches
   (TTL/ECN/DSCP/ident) must keep the stored IPv4 checksum equal to a
   full recompute; pooled construction must produce the same wire image
   as unpooled; and the pool's reuse bookkeeping must hold. *)

open Tpp

let qtest = QCheck_alcotest.to_alcotest

let hex b =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (Bytes.length b) (Bytes.get_uint8 b)))

let bytes_equal_t = Alcotest.testable (fun fmt b -> Format.pp_print_string fmt (hex b)) Bytes.equal

let mac_a = Mac.of_host_id 1
let mac_b = Mac.of_host_id 2

(* ---- oracle: the wire image composed with the record writers ---- *)

let oracle_image frame =
  let w = Buf.Writer.create () in
  Ethernet.write w (Frame.eth frame);
  (match frame.Frame.tpp with Some s -> Prog.write w s | None -> ());
  let pay = Frame.payload frame in
  (match (Frame.ip frame, Frame.udp frame) with
  | Some ip, Some u ->
    Ipv4.Header.write w ip ~payload_len:(Udp.size + Bytes.length pay);
    Udp.write w u ~payload_len:(Bytes.length pay)
  | Some ip, None -> Ipv4.Header.write w ip ~payload_len:(Bytes.length pay)
  | None, _ -> ());
  Buf.Writer.bytes w pay;
  Buf.Writer.contents w

(* Encodable-only instruction generator (unencodable operands are a
   serialization error by design, tested elsewhere). *)
let instr_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Instr.Nop);
        (1, return Instr.Halt);
        (3, map (fun v -> Instr.Push (Instr.Imm v)) (int_bound 0xFF));
        (2, map (fun v -> Instr.Push (Instr.Sw v)) (int_bound 0x20));
        (2, map (fun v -> Instr.Pop (Instr.Pkt (4 * v))) (int_bound 0x08));
      ])

let frame_spec_gen =
  QCheck.Gen.(
    tup6 (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFFFF)
      (int_range 1 255)
      (string_size (0 -- 101))
      (option (pair (list_size (0 -- 8) instr_gen) (int_range 1 16))))

let frame_spec_arbitrary =
  QCheck.make
    ~print:(fun (sp, dp, ip, ttl, pay, tpp) ->
      Printf.sprintf "sport=%d dport=%d ip=%#x ttl=%d pay=%d tpp=%s" sp dp ip ttl
        (String.length pay)
        (match tpp with
        | None -> "no"
        | Some (prog, words) ->
          Printf.sprintf "%d instrs / %d words" (List.length prog) words))
    frame_spec_gen

let build_spec (sport, dport, ip, ttl, payload, tpp) =
  let tpp =
    Option.map
      (fun (prog, mem_words) -> Prog.make ~program:prog ~mem_len:(4 * mem_words) ())
      tpp
  in
  Frame.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(Ipv4.Addr.of_int ip)
    ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:sport ~dst_port:dport ~ttl ?tpp
    ~payload:(Bytes.of_string payload) ()

let prop_flat_serialize_matches_record_writers =
  QCheck.Test.make
    ~name:"flat serialization == record-codec composition (with/without TPP)"
    ~count:500 frame_spec_arbitrary
    (fun spec ->
      let frame = build_spec spec in
      Bytes.equal (Frame.serialize frame) (oracle_image frame))

let prop_flat_accessors_match_records =
  QCheck.Test.make ~name:"flat field accessors == materialized records" ~count:300
    frame_spec_arbitrary
    (fun spec ->
      let frame = build_spec spec in
      let ip = Option.get (Frame.ip frame) in
      let udp = Option.get (Frame.udp frame) in
      Ipv4.Addr.equal (Frame.ip_src frame) ip.Ipv4.Header.src
      && Ipv4.Addr.equal (Frame.ip_dst frame) ip.Ipv4.Header.dst
      && Frame.ip_ttl frame = ip.Ipv4.Header.ttl
      && Frame.ip_proto frame = ip.Ipv4.Header.proto
      && Frame.ip_ident frame = ip.Ipv4.Header.ident
      && Frame.udp_src_port frame = udp.Udp.src_port
      && Frame.udp_dst_port frame = udp.Udp.dst_port)

(* ---- incremental checksum vs full recompute -------------------------- *)

let patch_gen =
  QCheck.Gen.(
    list_size (1 -- 12)
      (oneof
         [
           map (fun v -> `Ttl (1 + v)) (int_bound 254);
           map (fun v -> `Ecn v) (int_bound 3);
           map (fun v -> `Dscp v) (int_bound 63);
           map (fun v -> `Ident v) (int_bound 0xFFFF);
         ]))

let prop_incremental_checksum_matches_recompute =
  QCheck.Test.make
    ~name:"RFC 1624 patches keep the IPv4 checksum equal to a recompute"
    ~count:500
    (QCheck.make
       ~print:(fun (spec, ps) ->
         QCheck.Print.pair
           (fun s -> (QCheck.get_print frame_spec_arbitrary |> Option.get) s)
           (fun l -> string_of_int (List.length l) ^ " patches")
           (spec, ps))
       QCheck.Gen.(pair frame_spec_gen patch_gen))
    (fun (spec, patches) ->
      let frame = build_spec spec in
      List.iter
        (function
          | `Ttl v -> Frame.set_ip_ttl frame v
          | `Ecn v -> Frame.set_ip_ecn frame v
          | `Dscp v -> Frame.set_ip_dscp frame v
          | `Ident v -> Frame.set_ip_ident frame v)
        patches;
      let img = Frame.serialize frame in
      (* A valid header sums (checksum field included) to zero... *)
      Ipv4.checksum img ~pos:frame.Frame.ip_off ~len:Ipv4.Header.size = 0
      (* ...and the patched image must equal a from-scratch render of the
         same field values (full checksum recompute included). *)
      && Bytes.equal img (oracle_image frame)
      && match Frame.parse img with Ok _ -> true | Error _ -> false)

(* ---- pooled vs unpooled construction --------------------------------- *)

let prop_pooled_construction_identical =
  QCheck.Test.make
    ~name:"pooled and unpooled frames render the same wire image" ~count:300
    frame_spec_arbitrary
    (fun (sport, dport, ip, ttl, payload, _) ->
      (* The pool path is exercised on plain UDP (its steady-state use),
         so the spec's TPP component is dropped on both sides. *)
      let pool = Frame.Pool.create ~capacity:4 ~frame_bytes:256 () in
      let pooled =
        Frame.Pool.udp_frame pool ~src_mac:mac_a ~dst_mac:mac_b
          ~src_ip:(Ipv4.Addr.of_int ip) ~dst_ip:(Ipv4.Addr.of_host_id 2)
          ~src_port:sport ~dst_port:dport ~ttl
          ~payload:(Bytes.of_string payload) ()
      in
      let plain =
        Frame.udp_frame ~src_mac:mac_a ~dst_mac:mac_b
          ~src_ip:(Ipv4.Addr.of_int ip) ~dst_ip:(Ipv4.Addr.of_host_id 2)
          ~src_port:sport ~dst_port:dport ~ttl
          ~payload:(Bytes.of_string payload) ()
      in
      (* The IP ident is the one constructor input drawn from the global
         id counter; align it (incrementally) before comparing. *)
      Frame.set_ip_ident pooled 0x2222;
      Frame.set_ip_ident plain 0x2222;
      Bytes.equal (Frame.serialize pooled) (Frame.serialize plain)
      && Frame.flow_hash pooled = Frame.flow_hash plain
      && Frame.wire_size pooled = Frame.wire_size plain)

let test_pool_reuse () =
  let pool = Frame.Pool.create ~capacity:2 ~frame_bytes:256 () in
  let send payload =
    Frame.Pool.udp_frame pool ~src_mac:mac_a ~dst_mac:mac_b
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
      ~src_port:5 ~dst_port:7 ~payload ()
  in
  let f1 = send (Bytes.make 10 'a') in
  Alcotest.(check int) "one created" 1 (Frame.Pool.created pool);
  Alcotest.(check int) "one outstanding" 1 (Frame.Pool.outstanding pool);
  let buf1 = f1.Frame.buf in
  Frame.recycle f1;
  Alcotest.(check int) "recycle returns it" 0 (Frame.Pool.outstanding pool);
  let f2 = send (Bytes.make 32 'b') in
  Alcotest.(check int) "no new allocation" 1 (Frame.Pool.created pool);
  Alcotest.(check int) "reuse counted" 1 (Frame.Pool.reused pool);
  Alcotest.(check bool) "same physical buffer" true (f2.Frame.buf == buf1);
  Alcotest.(check int) "re-rendered payload" 32 (Frame.payload_len f2);
  (match Frame.parse (Frame.serialize f2) with
  | Ok got -> Alcotest.(check int) "re-rendered frame parses" 32 (Frame.payload_len got)
  | Error e -> Alcotest.fail e);
  (* Double recycle must not corrupt the free list. *)
  Frame.recycle f2;
  Frame.recycle f2;
  Alcotest.(check int) "double recycle is a no-op" 0 (Frame.Pool.outstanding pool);
  let f3 = send (Bytes.make 4 'c') in
  let f4 = send (Bytes.make 4 'd') in
  Alcotest.(check bool) "no aliased frames after double recycle" true (f3 != f4);
  (* Unpooled frames ignore recycle entirely. *)
  let loose =
    Frame.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(Ipv4.Addr.of_host_id 1)
      ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1 ~dst_port:2
      ~payload:Bytes.empty ()
  in
  Frame.recycle loose;
  Alcotest.(check int) "foreign recycle does not join the pool" 2
    (Frame.Pool.outstanding pool)

let test_clone_is_private () =
  let pool = Frame.Pool.create ~capacity:2 ~frame_bytes:256 () in
  let f =
    Frame.Pool.udp_frame pool ~src_mac:mac_a ~dst_mac:mac_b
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
      ~src_port:5 ~dst_port:7 ~payload:(Bytes.make 8 'x') ()
  in
  let c = Frame.clone f in
  Alcotest.(check bool) "clone owns its buffer" true (c.Frame.buf != f.Frame.buf);
  let ttl = Frame.ip_ttl f in
  Frame.set_ip_ttl c (ttl - 5);
  Alcotest.(check int) "patching the clone leaves the original intact" ttl
    (Frame.ip_ttl f)

(* ---- pcap golden image ------------------------------------------------ *)

(* Frozen pcap file image for a two-frame capture (one plain datagram,
   one TPP frame). Every constructor input is pinned — idents are
   patched to constants — so this must never change; it guards the
   single-blit emission path end to end (frame serialize + pcap
   framing). Regenerate only for a deliberate wire-format change. *)
let pcap_golden_hex =
  "d4c3b2a1020004000000000000000000ffff00000100000000000000e80300002f0000002f00000002000010000202000010000108004500002112344000401114960a0000010a00000200050007000d000068656c6c6f00000000c4090000540000005400000002000010000102000010000288b50100000800100000000000000800000010002000e8002000000000000000000000000000000000004500001e432140004011e3ab0a0000020a0000010009000b000a00006f6b"

let golden_capture () =
  let cap = Pcap.create () in
  let plain =
    Frame.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(Ipv4.Addr.of_host_id 1)
      ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:5 ~dst_port:7
      ~payload:(Bytes.of_string "hello") ()
  in
  Frame.set_ip_ident plain 0x1234;
  Pcap.record cap ~now:1_000_000 plain;
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 "PUSH [Switch:SwitchID]\nHALT\n") in
  let probe =
    Frame.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(Ipv4.Addr.of_host_id 2)
      ~dst_ip:(Ipv4.Addr.of_host_id 1) ~src_port:9 ~dst_port:11 ~tpp
      ~payload:(Bytes.of_string "ok") ()
  in
  Frame.set_ip_ident probe 0x4321;
  Pcap.record cap ~now:2_500_000 probe;
  cap

let test_pcap_golden () =
  let image = Pcap.to_bytes (golden_capture ()) in
  Alcotest.check bytes_equal_t "pcap image frozen"
    (Bytes.of_string
       (String.init
          (String.length pcap_golden_hex / 2)
          (fun i ->
            Char.chr (int_of_string ("0x" ^ String.sub pcap_golden_hex (2 * i) 2)))))
    image

let suite =
  [
    qtest prop_flat_serialize_matches_record_writers;
    qtest prop_flat_accessors_match_records;
    qtest prop_incremental_checksum_matches_recompute;
    qtest prop_pooled_construction_identical;
    Alcotest.test_case "pool reuse bookkeeping" `Quick test_pool_reuse;
    Alcotest.test_case "clone owns a private buffer" `Quick test_clone_is_private;
    Alcotest.test_case "pcap golden image" `Quick test_pcap_golden;
  ]
