(* Million-host scale properties. Two families:

   1. Route equivalence: aggregated-prefix FIBs (`Pods addressing,
      Connected block routes + an ECMP default up) must forward every
      (src, dst) pair along exactly the path the per-host /32 oracle
      picks, on random fat-trees and leaf-spines and for every ECMP
      key. The walk resolves actions with the same select_path /
      connected_port the dataplane uses, so agreement here is agreement
      about the wire.

   2. The workload engine: a pure function of its seed (bit-identical
      replans, per-host streams stable under fabric growth), with
      sample means that hit the analytic means of its CDFs. *)

open Tpp

let qtest = QCheck_alcotest.to_alcotest
let bps = 10_000_000_000
let delay = Time_ns.us 1

(* The port the pipeline would pick at [sw] for [dst] under ECMP key
   [key] — Forward / Multipath / Connected resolved exactly as the
   dataplane resolves them. *)
let out_port sw ~dst ~key =
  match Switch.route_action sw dst with
  | None | Some Tables.Drop -> None
  | Some (Tables.Forward p) -> Some p
  | Some (Tables.Multipath ports) -> Some (Tables.select_path ports ~key)
  | Some (Tables.Connected c) -> Tables.connected_port c dst

(* Walk from [src]'s attach switch to [dst]; returns the switch node
   sequence. Fails the test on a loop, a missing route, or a route
   pointing off the fabric. *)
let walk net ~(src : Net.host) ~(dst : Net.host) ~key =
  let rec go node hops count =
    if count > 16 then Alcotest.fail "path did not converge within 16 hops"
    else if node = dst.Net.node_id then List.rev hops
    else begin
      let sw = Net.switch net node in
      match out_port sw ~dst:dst.Net.ip ~key with
      | None -> Alcotest.failf "no route for %s at node %d"
                  (Ipv4.Addr.to_string dst.Net.ip) node
      | Some port -> (
        match
          List.find_opt (fun (p, _, _) -> p = port) (Net.neighbors net node)
        with
        | None -> Alcotest.failf "route points at unconnected port %d" port
        | Some (_, peer, _) -> go peer (node :: hops) (count + 1))
    end
  in
  match Net.neighbors net src.Net.node_id with
  | [ (_, attach, _) ] -> go attach [] 0
  | _ -> Alcotest.fail "host not singly attached"

(* Oracle and aggregated fabrics are built with identical construction
   order, so node ids correspond 1:1 and paths compare directly. *)
let check_pair ~oracle ~agg ~src_i ~dst_i ~hosts_o ~hosts_a =
  let so = hosts_o.(src_i) and d_o = hosts_o.(dst_i) in
  let sa = hosts_a.(src_i) and da = hosts_a.(dst_i) in
  for key = 0 to 3 do
    let po = walk oracle ~src:so ~dst:d_o ~key in
    let pa = walk agg ~src:sa ~dst:da ~key in
    if po <> pa then
      Alcotest.failf
        "paths diverge for host %d -> %d key %d: oracle [%s] aggregated [%s]"
        src_i dst_i key
        (String.concat ";" (List.map string_of_int po))
        (String.concat ";" (List.map string_of_int pa))
  done

let test_fat_tree_equiv =
  QCheck.Test.make
    ~name:"aggregated fat-tree forwards exactly like the /32 oracle" ~count:6
    QCheck.(make Gen.(pair (oneofl [ 2; 4; 6; 8 ]) (int_bound 1_000_000)))
    (fun (k, salt) ->
      let oracle =
        Topology.fat_tree (Engine.create ()) ~addressing:`Pods ~fib:`Host32 ~k
          ~bps ~delay ()
      in
      let agg =
        Topology.fat_tree (Engine.create ()) ~addressing:`Pods
          ~fib:`Aggregated ~k ~bps ~delay ()
      in
      let hosts_o = oracle.Topology.f_hosts
      and hosts_a = agg.Topology.f_hosts in
      let n = Array.length hosts_o in
      (* All pairs up to k=4; a salted stride sample of pairs beyond. *)
      let stride = if n <= 16 then 1 else 7 in
      let off = salt mod stride in
      let pair = ref off in
      while !pair < n * n do
        let src_i = !pair / n and dst_i = !pair mod n in
        if src_i <> dst_i then
          check_pair ~oracle:oracle.Topology.f_net ~agg:agg.Topology.f_net
            ~src_i ~dst_i ~hosts_o ~hosts_a;
        pair := !pair + stride
      done;
      true)

let test_leaf_spine_equiv =
  QCheck.Test.make
    ~name:"aggregated leaf-spine forwards exactly like the /32 oracle"
    ~count:8
    QCheck.(
      make
        Gen.(
          triple (2 -- 8) (1 -- 4) (1 -- 8)))
    (fun (leaves, spines, hosts_per_leaf) ->
      let build () =
        Topology.leaf_spine (Engine.create ()) ~leaves ~spines ~hosts_per_leaf
          ~bps ~delay ()
      in
      let agg = build () in
      (* The oracle: the same fabric with per-host /32s overlaid — the
         longer prefixes win every lookup, so this is install_routes'
         grouped-BFS view of the identical topology. *)
      let oracle = build () in
      Topology.install_routes ~ecmp:true oracle.Topology.ls_net;
      let hosts_o = oracle.Topology.ls_hosts
      and hosts_a = agg.Topology.ls_hosts in
      let n = Array.length hosts_o in
      for src_i = 0 to n - 1 do
        for dst_i = 0 to n - 1 do
          if src_i <> dst_i then
            check_pair ~oracle:oracle.Topology.ls_net ~agg:agg.Topology.ls_net
              ~src_i ~dst_i ~hosts_o ~hosts_a
        done
      done;
      true)

(* Structural FIB census: aggregation means O(1) entries everywhere,
   independent of host count. *)
let test_fib_size () =
  let ft =
    Topology.fat_tree (Engine.create ()) ~addressing:`Pods ~fib:`Aggregated
      ~k:8 ~bps ~delay ()
  in
  List.iter
    (fun (_, sw) ->
      let n = Switch.l3_size sw in
      if n > 2 then
        Alcotest.failf "aggregated fat-tree switch holds %d L3 entries" n)
    (Net.switches ft.Topology.f_net);
  let ls =
    Topology.leaf_spine (Engine.create ()) ~leaves:16 ~spines:4
      ~hosts_per_leaf:32 ~bps ~delay ()
  in
  List.iter
    (fun (_, sw) ->
      let n = Switch.l3_size sw in
      if n > 2 then
        Alcotest.failf "aggregated leaf-spine switch holds %d L3 entries" n)
    (Net.switches ls.Topology.ls_net)

(* ---- workload engine ---------------------------------------------- *)

let flows_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 ( = ) a b

let test_workload_deterministic () =
  let plan seed =
    Workload.poisson ~seed ~hosts:32 ~mix:Workload.Websearch ~load:0.6
      ~link_bps:bps ~window:(Time_ns.ms 50) ()
  in
  let a = plan 11 and b = plan 11 in
  Alcotest.(check bool) "same seed, same plan" true (flows_equal a b);
  Alcotest.(check bool) "plans are non-trivial" true (Array.length a > 0);
  let c = plan 12 in
  Alcotest.(check bool) "different seed, different plan" false
    (flows_equal a c);
  (* Sorted by (at, src, dst, size). *)
  Array.iteri
    (fun i f ->
      if i > 0 then
        Alcotest.(check bool) "sorted" true
          (Workload.compare_flow a.(i - 1) f <= 0))
    a

let test_workload_host_stable () =
  (* Host h's stream is keyed by (seed, h): growing the fabric must not
     change any existing host's arrival times or sizes (destinations
     may move — the default pattern depends on the host count). *)
  let plan hosts =
    Workload.poisson ~seed:7 ~hosts ~mix:Workload.Datamining ~load:0.5
      ~link_bps:bps ~window:(Time_ns.ms 50) ()
  in
  let small = plan 8 and big = plan 16 in
  let key f = (f.Workload.at, f.Workload.src, f.Workload.size) in
  let of_src n plan =
    Array.to_list plan
    |> List.filter (fun f -> f.Workload.src < n)
    |> List.map key
    |> List.sort compare
  in
  Alcotest.(check bool) "first 8 hosts unchanged by growth" true
    (of_src 8 small = of_src 8 big)

let test_incast () =
  let senders = [ 0; 1; 2; 3; 4 ] in
  let plan = Workload.incast ~at:(Time_ns.us 5) ~dst:3 ~senders ~bytes:4096 in
  Alcotest.(check int) "dst excluded from senders" 4 (Array.length plan);
  Array.iter
    (fun f ->
      Alcotest.(check int) "all at the same instant" (Time_ns.us 5)
        f.Workload.at;
      Alcotest.(check int) "all aimed at dst" 3 f.Workload.dst;
      Alcotest.(check bool) "no self-send" true (f.Workload.src <> 3))
    plan;
  Alcotest.(check int) "total bytes" (4 * 4096) (Workload.total_bytes plan)

(* Empirical means vs the analytic means the load targeting relies on.
   Fixed seeds make these exact regressions, not statistical ones; the
   tolerances (far above the standard error at 100k draws) document the
   expected convergence. *)
let test_sample_means () =
  let check name mix tol =
    let rng = Rng.create ~seed:42 in
    let n = 100_000 in
    let sum = ref 0.0 in
    for _ = 1 to n do
      sum := !sum +. float_of_int (Workload.sample_bytes rng mix)
    done;
    let mean = !sum /. float_of_int n in
    let want = Workload.mean_bytes mix in
    let rel = Float.abs (mean -. want) /. want in
    if rel > tol then
      Alcotest.failf "%s: sample mean %.0f vs analytic %.0f (%.1f%% off)" name
        mean want (100.0 *. rel)
  in
  check "websearch" Workload.Websearch 0.10;
  check "datamining" Workload.Datamining 0.20;
  check "pareto" (Workload.Pareto { shape = 2.5; mean_bytes = 10_000.0 }) 0.05;
  check "fixed" (Workload.Fixed 1234) 0.0

let test_arrival_rate () =
  (* load * bps / (8 * mean): exact for the Fixed mix. *)
  let rate =
    Workload.arrival_rate ~load:0.5 ~link_bps:10_000_000_000
      ~mix:(Workload.Fixed 1_000_000)
  in
  Alcotest.(check (float 1e-6)) "arrival rate" 625.0 rate;
  Alcotest.check_raises "zero load rejected"
    (Invalid_argument "Workload: load must be positive") (fun () ->
      ignore
        (Workload.arrival_rate ~load:0.0 ~link_bps:1 ~mix:(Workload.Fixed 1)))

let suite =
  [
    qtest test_fat_tree_equiv;
    qtest test_leaf_spine_equiv;
    Alcotest.test_case "aggregated FIBs stay O(1) per switch" `Quick
      test_fib_size;
    Alcotest.test_case "workload: same seed, same plan" `Quick
      test_workload_deterministic;
    Alcotest.test_case "workload: host streams stable under growth" `Quick
      test_workload_host_stable;
    Alcotest.test_case "workload: incast shape" `Quick test_incast;
    Alcotest.test_case "workload: sample means match analytic" `Quick
      test_sample_means;
    Alcotest.test_case "workload: arrival rate closed form" `Quick
      test_arrival_rate;
  ]
