(* Forwarding-table tests: L2 exact match, L3 longest-prefix match
   (against a reference implementation), TCAM priorities. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fwd port ~id = { Tables.action = Tables.Forward port; entry_id = id; version = 1 }

let port_of = function
  | Some { Tables.action = Tables.Forward p; _ } -> Some p
  | Some { Tables.action = Tables.Multipath ports; _ } ->
    Some (Tables.select_path ports ~key:0)
  | Some { Tables.action = Tables.Drop; _ } -> Some (-1)
  | Some { Tables.action = Tables.Connected c; _ } ->
    Tables.connected_port c (Ipv4.Addr.of_int c.Tables.c_base)
  | None -> None

(* --- L2 --------------------------------------------------------------- *)

let test_l2 () =
  let t = Tables.L2.create () in
  Tables.L2.install t (Mac.of_host_id 1) (fwd 3 ~id:1);
  Tables.L2.install t (Mac.of_host_id 2) (fwd 4 ~id:2);
  check Alcotest.int "size" 2 (Tables.L2.size t);
  check (Alcotest.option Alcotest.int) "hit" (Some 3)
    (port_of (Tables.L2.lookup t (Mac.of_host_id 1)));
  check (Alcotest.option Alcotest.int) "miss" None
    (port_of (Tables.L2.lookup t (Mac.of_host_id 9)));
  Tables.L2.install t (Mac.of_host_id 1) (fwd 7 ~id:3);
  check (Alcotest.option Alcotest.int) "replace" (Some 7)
    (port_of (Tables.L2.lookup t (Mac.of_host_id 1)));
  check Alcotest.int "size after replace" 2 (Tables.L2.size t);
  Tables.L2.remove t (Mac.of_host_id 1);
  check (Alcotest.option Alcotest.int) "removed" None
    (port_of (Tables.L2.lookup t (Mac.of_host_id 1)))

(* --- L3 --------------------------------------------------------------- *)

let addr = Ipv4.Addr.of_string
let prefix = Ipv4.Prefix.of_string

let test_l3_longest_match () =
  let t = Tables.L3.create () in
  Tables.L3.install t (prefix "0.0.0.0/0") (fwd 0 ~id:1);
  Tables.L3.install t (prefix "10.0.0.0/8") (fwd 1 ~id:2);
  Tables.L3.install t (prefix "10.1.0.0/16") (fwd 2 ~id:3);
  Tables.L3.install t (prefix "10.1.2.0/24") (fwd 3 ~id:4);
  check Alcotest.int "size" 4 (Tables.L3.size t);
  let expect want ip =
    check (Alcotest.option Alcotest.int) ip (Some want)
      (port_of (Tables.L3.lookup t (addr ip)))
  in
  expect 0 "192.168.1.1";
  expect 1 "10.200.0.1";
  expect 2 "10.1.200.1";
  expect 3 "10.1.2.200"

let test_l3_remove () =
  let t = Tables.L3.create () in
  Tables.L3.install t (prefix "10.0.0.0/8") (fwd 1 ~id:1);
  Tables.L3.install t (prefix "10.1.0.0/16") (fwd 2 ~id:2);
  Tables.L3.remove t (prefix "10.1.0.0/16");
  check Alcotest.int "size" 1 (Tables.L3.size t);
  check (Alcotest.option Alcotest.int) "falls back to /8" (Some 1)
    (port_of (Tables.L3.lookup t (addr "10.1.0.1")))

let test_l3_host_routes () =
  let t = Tables.L3.create () in
  Tables.L3.install t (Ipv4.Prefix.host (addr "10.0.0.1")) (fwd 5 ~id:1);
  check (Alcotest.option Alcotest.int) "exact" (Some 5)
    (port_of (Tables.L3.lookup t (addr "10.0.0.1")));
  check (Alcotest.option Alcotest.int) "neighbour misses" None
    (port_of (Tables.L3.lookup t (addr "10.0.0.2")))

let test_l3_entries_roundtrip () =
  let t = Tables.L3.create () in
  let ps = [ "0.0.0.0/0"; "10.0.0.0/8"; "10.1.0.0/16"; "172.16.5.0/24" ] in
  List.iteri (fun i p -> Tables.L3.install t (prefix p) (fwd i ~id:i)) ps;
  let dumped =
    Tables.L3.entries t
    |> List.map (fun (p, _) -> Format.asprintf "%a" Ipv4.Prefix.pp p)
    |> List.sort String.compare
  in
  check (Alcotest.list Alcotest.string) "all prefixes back"
    (List.sort String.compare ps) dumped

(* Reference LPM: linear scan keeping the longest matching prefix. *)
let reference_lpm prefixes a =
  List.fold_left
    (fun best (p, port) ->
      if Ipv4.Prefix.matches p a then
        match best with
        | Some (bl, _) when bl >= Ipv4.Prefix.length p -> best
        | _ -> Some (Ipv4.Prefix.length p, port)
      else best)
    None prefixes
  |> Option.map snd

let prop_l3_matches_reference =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 15) (pair (int_bound 0xFFFFFFF) (int_range 0 32)))
        (list_size (1 -- 30) (int_bound 0xFFFFFFF)))
  in
  QCheck.Test.make ~name:"L3 trie agrees with linear-scan LPM" ~count:100
    (QCheck.make gen) (fun (raw_prefixes, raw_addrs) ->
      let t = Tables.L3.create () in
      let prefixes =
        List.mapi
          (fun i (v, len) ->
            let p = Ipv4.Prefix.make (Ipv4.Addr.of_int v) len in
            Tables.L3.install t p (fwd i ~id:i);
            (p, i))
          raw_prefixes
      in
      (* Deduplicate: a later install of an equal prefix overwrites, so the
         reference must keep the last port per distinct prefix. *)
      let dedup =
        List.fold_left
          (fun acc (p, port) ->
            (p, port) :: List.filter (fun (q, _) -> not (Ipv4.Prefix.equal p q)) acc)
          [] prefixes
      in
      List.for_all
        (fun v ->
          let a = Ipv4.Addr.of_int v in
          port_of (Tables.L3.lookup t a) = reference_lpm dedup a)
        raw_addrs)

(* --- TCAM -------------------------------------------------------------- *)

let lookup_ip t ~src ~dst =
  Tables.Tcam.lookup t ~src_ip:(Some (addr src)) ~dst_ip:(Some (addr dst))
    ~proto:(Some 17) ~in_port:0 ~dst_port:(Some 80)

let test_tcam_priority () =
  let t = Tables.Tcam.create () in
  Tables.Tcam.install t
    { Tables.Tcam.any with Tables.Tcam.priority = 1 }
    (fwd 1 ~id:1);
  Tables.Tcam.install t
    { Tables.Tcam.any with
      Tables.Tcam.priority = 10; dst_ip = Some (addr "10.0.0.2", 0xFFFFFFFF) }
    (fwd 2 ~id:2);
  check (Alcotest.option Alcotest.int) "specific wins" (Some 2)
    (port_of (lookup_ip t ~src:"10.0.0.1" ~dst:"10.0.0.2"));
  check (Alcotest.option Alcotest.int) "fallback" (Some 1)
    (port_of (lookup_ip t ~src:"10.0.0.1" ~dst:"10.0.0.9"))

let test_tcam_tie_break_by_entry_id () =
  let t = Tables.Tcam.create () in
  Tables.Tcam.install t { Tables.Tcam.any with Tables.Tcam.priority = 5 } (fwd 8 ~id:20);
  Tables.Tcam.install t { Tables.Tcam.any with Tables.Tcam.priority = 5 } (fwd 9 ~id:10);
  check (Alcotest.option Alcotest.int) "lower id wins ties" (Some 9)
    (port_of (lookup_ip t ~src:"1.1.1.1" ~dst:"2.2.2.2"))

let test_tcam_masked_match () =
  let t = Tables.Tcam.create () in
  Tables.Tcam.install t
    { Tables.Tcam.any with
      Tables.Tcam.priority = 5; src_ip = Some (addr "10.1.0.0", 0xFFFF0000) }
    (fwd 3 ~id:1);
  check (Alcotest.option Alcotest.int) "inside mask" (Some 3)
    (port_of (lookup_ip t ~src:"10.1.99.99" ~dst:"8.8.8.8"));
  check (Alcotest.option Alcotest.int) "outside mask" None
    (port_of (lookup_ip t ~src:"10.2.0.1" ~dst:"8.8.8.8"))

let test_tcam_port_and_proto_fields () =
  let t = Tables.Tcam.create () in
  Tables.Tcam.install t
    { Tables.Tcam.any with Tables.Tcam.priority = 5; in_port = Some 2;
      proto = Some 17; dst_port = Some 53 }
    (fwd 4 ~id:1);
  let q ~in_port ~proto ~dst_port =
    Tables.Tcam.lookup t ~src_ip:None ~dst_ip:None ~proto ~in_port ~dst_port
  in
  check (Alcotest.option Alcotest.int) "all fields match" (Some 4)
    (port_of (q ~in_port:2 ~proto:(Some 17) ~dst_port:(Some 53)));
  check (Alcotest.option Alcotest.int) "wrong in_port" None
    (port_of (q ~in_port:3 ~proto:(Some 17) ~dst_port:(Some 53)));
  check (Alcotest.option Alcotest.int) "missing proto" None
    (port_of (q ~in_port:2 ~proto:None ~dst_port:(Some 53)))

let test_tcam_drop_and_remove () =
  let t = Tables.Tcam.create () in
  Tables.Tcam.install t
    { Tables.Tcam.any with Tables.Tcam.priority = 9 }
    { Tables.action = Tables.Drop; entry_id = 66; version = 1 };
  check (Alcotest.option Alcotest.int) "drop rule" (Some (-1))
    (port_of (lookup_ip t ~src:"1.1.1.1" ~dst:"2.2.2.2"));
  Tables.Tcam.remove_id t 66;
  check Alcotest.int "removed" 0 (Tables.Tcam.size t);
  check (Alcotest.option Alcotest.int) "no match" None
    (port_of (lookup_ip t ~src:"1.1.1.1" ~dst:"2.2.2.2"))

let suite =
  [
    Alcotest.test_case "l2 table" `Quick test_l2;
    Alcotest.test_case "l3 longest match" `Quick test_l3_longest_match;
    Alcotest.test_case "l3 remove" `Quick test_l3_remove;
    Alcotest.test_case "l3 host routes" `Quick test_l3_host_routes;
    Alcotest.test_case "l3 entries dump" `Quick test_l3_entries_roundtrip;
    qtest prop_l3_matches_reference;
    Alcotest.test_case "tcam priority" `Quick test_tcam_priority;
    Alcotest.test_case "tcam tie-break" `Quick test_tcam_tie_break_by_entry_id;
    Alcotest.test_case "tcam masked match" `Quick test_tcam_masked_match;
    Alcotest.test_case "tcam field match" `Quick test_tcam_port_and_proto_fields;
    Alcotest.test_case "tcam drop and remove" `Quick test_tcam_drop_and_remove;
  ]
