let () =
  Alcotest.run "tpp"
    [
      ("util", Test_util.suite);
      ("packet", Test_packet.suite);
      ("isa", Test_isa.suite);
      ("frames", Test_frames.suite);
      ("asm", Test_asm.suite);
      ("tables", Test_tables.suite);
      ("asic", Test_asic.suite);
      ("tcpu", Test_tcpu.suite);
      ("compile", Test_compile.suite);
      ("switch", Test_switch.suite);
      ("sim", Test_sim.suite);
      ("parsim", Test_parsim.suite);
      ("fault", Test_fault.suite);
      ("endhost", Test_endhost.suite);
      ("rcp", Test_rcp.suite);
      ("ndb", Test_ndb.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("dataplane-ext", Test_dataplane_ext.suite);
      ("control", Test_control.suite);
      ("golden", Test_golden.suite);
      ("tcp", Test_tcp.suite);
      ("transport", Test_transport.suite);
      ("telemetry", Test_telemetry.suite);
      ("scale", Test_scale.suite);
    ]
