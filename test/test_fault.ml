(* Deterministic fault injection (Tpp_sim.Fault): timeline semantics,
   corruption containment, switch freeze-restart, retry hardening, and
   the load-bearing property that a chaotic schedule produces
   bit-identical results on the sequential and sharded engines. *)

open Tpp

let check = Alcotest.check

let ms = Time_ns.ms
let us = Time_ns.us

(* One switch, two hosts, already routed. *)
let tiny () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:1 ~hosts_per_switch:2 ~bps:1_000_000_000
      ~delay:(Time_ns.us 1) ()
  in
  let net = chain.Topology.net in
  (eng, net, chain.Topology.switch_ids.(0), chain.Topology.hosts.(0))

let send_at net (src : Net.host) (dst : Net.host) t =
  Engine.at (Net.engine net) t (fun () ->
      let frame =
        Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
          ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2
          ~payload:(Bytes.create 100) ()
      in
      Net.host_send net src frame)

(* --- timeline semantics --------------------------------------------- *)

let test_timeline () =
  let _eng, net, sw, hosts = tiny () in
  let h0 = hosts.(0) in
  let link = (h0.Net.node_id, 0) in
  let f = Fault.create ~seed:1 in
  Fault.link_down f ~at:(ms 10) link;
  Fault.link_up f ~at:(ms 20) link;
  Fault.flap f ~from_:(ms 30) ~until_:(ms 50) ~period:(ms 4) ~down_for:(ms 1) link;
  Fault.attach f net;
  let expect t v = check Alcotest.bool (Printf.sprintf "t=%dns" t) v (Fault.up f link ~now:t) in
  expect 0 true;
  expect (ms 10) false;
  expect (ms 15) false;
  expect (ms 20) true;
  expect (ms 30) false;          (* flap phase: first down_for of each period *)
  expect (ms 31) true;
  expect (ms 34) false;
  expect (ms 35) true;
  expect (ms 50) true;           (* window is half-open *)
  (* Either end names the same cable (chain wires host j to switch
     port 2 + j). *)
  check Alcotest.bool "peer endpoint, same cable" false
    (Fault.up f (sw, 2) ~now:(ms 12));
  (* The real dataplane agrees with the oracle: a frame sent into the
     dark window is lost, one after restoration is delivered. *)
  let h1 = hosts.(1) in
  send_at net h0 h1 (ms 12);
  send_at net h0 h1 (ms 22);
  Engine.run (Net.engine net) ~until:(ms 25);
  check Alcotest.int "one delivered" 1 (Net.frames_delivered net);
  check Alcotest.int "one lost to the dark wire" 1 (Fault.stats f).Fault.lost_down

let test_validation () =
  let _eng, net, _sw, hosts = tiny () in
  let link = (hosts.(0).Net.node_id, 0) in
  let raises name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "bad flap" (fun () ->
      Fault.flap (Fault.create ~seed:0) ~from_:0 ~until_:(ms 1) ~period:(ms 1)
        ~down_for:(ms 2) link);
  raises "bad rate" (fun () ->
      Fault.degrade (Fault.create ~seed:0) ~from_:0 ~until_:(ms 1)
        ~rate_factor:1.5 link);
  raises "bad probability" (fun () ->
      Fault.lossy (Fault.create ~seed:0) ~from_:0 ~until_:(ms 1) ~drop:0.8
        ~corrupt:0.4 link);
  raises "empty window" (fun () ->
      Fault.freeze (Fault.create ~seed:0) ~from_:(ms 2) ~until_:(ms 2) 0);
  raises "unlinked port" (fun () ->
      let f = Fault.create ~seed:0 in
      Fault.link_down f ~at:0 (hosts.(0).Net.node_id, 3);
      Fault.attach f net);
  (* Freezing a host is rejected at attach (hosts have no SRAM). *)
  raises "freeze host" (fun () ->
      let f = Fault.create ~seed:0 in
      Fault.freeze f ~from_:0 ~until_:(ms 1) hosts.(0).Net.node_id;
      Fault.attach f net)

(* --- loss and corruption -------------------------------------------- *)

let test_corruption_never_delivered () =
  let eng, net, _sw, hosts = tiny () in
  let h0 = hosts.(0) and h1 = hosts.(1) in
  let f = Fault.create ~seed:7 in
  Fault.lossy f ~from_:0 ~until_:(ms 100) ~corrupt:1.0 (h0.Net.node_id, 0);
  Fault.attach f net;
  let n = 50 in
  for j = 0 to n - 1 do
    send_at net h0 h1 (1 + (j * 10_000))
  done;
  Engine.run eng ~until:(ms 100);
  let s = Fault.stats f in
  check Alcotest.int "nothing delivered" 0 (Net.frames_delivered net);
  check Alcotest.int "every frame corrupted and caught" n
    (s.Fault.corrupt_header + s.Fault.corrupt_fcs);
  (* Both detection layers fire across 50 random bit positions: headers
     catch flips in parsed bytes, the FCS catches the rest. *)
  check Alcotest.bool "header checks caught some" true (s.Fault.corrupt_header > 0);
  check Alcotest.bool "frame check caught some" true (s.Fault.corrupt_fcs > 0)

let test_drop_probability () =
  let eng, net, _sw, hosts = tiny () in
  let h0 = hosts.(0) and h1 = hosts.(1) in
  let f = Fault.create ~seed:11 in
  Fault.lossy f ~from_:0 ~until_:(Time_ns.sec 1) ~drop:0.5 (h0.Net.node_id, 0);
  Fault.attach f net;
  let n = 200 in
  for j = 0 to n - 1 do
    send_at net h0 h1 (1 + (j * 10_000))
  done;
  Engine.run eng ~until:(Time_ns.sec 1);
  let s = Fault.stats f in
  check Alcotest.int "conservation" n (Net.frames_delivered net + s.Fault.dropped);
  check Alcotest.bool "roughly half dropped" true
    (s.Fault.dropped > 60 && s.Fault.dropped < 140)

let test_freeze_restart () =
  let eng, net, sw_node, hosts = tiny () in
  let h0 = hosts.(0) and h1 = hosts.(1) in
  let f = Fault.create ~seed:3 in
  Fault.freeze f ~from_:(ms 5) ~until_:(ms 10) sw_node;
  Fault.attach f net;
  let st = Switch.state (Net.switch net sw_node) in
  ignore (Switch_state.sram_set st 0 42);
  send_at net h0 h1 (ms 6);   (* arrives at the frozen switch: vanishes *)
  send_at net h0 h1 (ms 12);  (* after restart: delivered *)
  Engine.run eng ~until:(ms 20);
  check Alcotest.bool "frozen inside window" true (Fault.frozen f sw_node ~now:(ms 7));
  check Alcotest.bool "thawed after" false (Fault.frozen f sw_node ~now:(ms 10));
  let s = Fault.stats f in
  check Alcotest.int "arrival vanished" 1 s.Fault.frozen_arrivals;
  check Alcotest.int "one restart" 1 s.Fault.restarts;
  check (Alcotest.option Alcotest.int) "SRAM wiped" (Some 0)
    (Switch_state.sram_get st 0);
  check Alcotest.int "post-restart frame delivered" 1 (Net.frames_delivered net)

let test_degrade_slows () =
  (* Same frame, with and without degradation: the degraded copy must
     arrive strictly later (slower serialisation + extra propagation),
     and never earlier than the healthy one (lookahead safety). *)
  let arrival_with schedule =
    let eng, net, _sw, hosts = tiny () in
    let h0 = hosts.(0) and h1 = hosts.(1) in
    schedule net h0;
    let arrived = ref 0 in
    let prev = h1.Net.receive in
    h1.Net.receive <- (fun ~now frame -> arrived := now; prev ~now frame);
    send_at net h0 h1 (ms 1);
    Engine.run eng ~until:(ms 10);
    !arrived
  in
  let healthy = arrival_with (fun net _ -> ignore net) in
  let degraded =
    arrival_with (fun net h0 ->
        let f = Fault.create ~seed:5 in
        Fault.degrade f ~from_:0 ~until_:(ms 10) ~rate_factor:0.1
          ~extra_delay:(us 30) (h0.Net.node_id, 0);
        Fault.attach f net)
  in
  check Alcotest.bool "healthy frame arrived" true (healthy > 0);
  check Alcotest.bool "degraded arrives later" true (degraded > healthy + us 30)

(* --- retry hardening ------------------------------------------------ *)

let probe_tpp () =
  Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Switch:SwitchID]\n")

let test_reliable_retries_through_outage () =
  let eng, net, _sw, hosts = tiny () in
  let src = Stack.create net hosts.(0) in
  let sink = Stack.create net hosts.(1) in
  Probe.install_echo sink;
  let f = Fault.create ~seed:2 in
  (* Dark for the first 5 ms: attempt 1 (t=0) and attempt 2 (t=2ms) are
     lost; attempt 3 (t=2+3=5ms) goes through. *)
  Fault.link_down f ~at:0 (hosts.(0).Net.node_id, 0);
  Fault.link_up f ~at:(ms 5) (hosts.(0).Net.node_id, 0);
  Fault.attach f net;
  let rel = Probe.Reliable.create ~timeout:(ms 2) ~retries:3 ~backoff:1.5 src in
  let got_reply = ref false in
  ignore
    (Probe.Reliable.send rel ~dst:hosts.(1) ~tpp:(probe_tpp ())
       ~on_reply:(fun ~now:_ _ -> got_reply := true)
       ());
  Engine.run eng ~until:(ms 50);
  let s = Probe.Reliable.stats rel in
  check Alcotest.bool "reply callback fired" true !got_reply;
  check Alcotest.int "one probe" 1 s.Probe.Reliable.probes;
  check Alcotest.int "three transmissions" 3 s.Probe.Reliable.transmissions;
  check Alcotest.int "answered" 1 s.Probe.Reliable.replies;
  check Alcotest.int "no failure" 0 s.Probe.Reliable.failures;
  check Alcotest.int "nothing outstanding" 0 (Probe.Reliable.outstanding rel);
  (* The stack counters see the retries and the one echo. *)
  check Alcotest.int "src sent = transmissions" 3 (Stack.udp_sent src);
  check Alcotest.int "src received the echo" 1 (Stack.udp_received src)

let test_reliable_gives_up () =
  let eng, net, _sw, hosts = tiny () in
  let src = Stack.create net hosts.(0) in
  let sink = Stack.create net hosts.(1) in
  Probe.install_echo sink;
  let f = Fault.create ~seed:2 in
  Fault.link_down f ~at:0 (hosts.(0).Net.node_id, 0);
  Fault.attach f net;
  let rel = Probe.Reliable.create ~timeout:(ms 2) ~retries:2 src in
  let failed = ref false in
  ignore
    (Probe.Reliable.send rel ~dst:hosts.(1) ~tpp:(probe_tpp ())
       ~on_fail:(fun ~now:_ -> failed := true)
       ());
  Engine.run eng ~until:(ms 50);
  let s = Probe.Reliable.stats rel in
  check Alcotest.bool "failure callback fired" true !failed;
  check Alcotest.int "1 + retries transmissions" 3 s.Probe.Reliable.transmissions;
  check Alcotest.int "abandoned" 1 s.Probe.Reliable.failures;
  check Alcotest.int "no replies" 0 s.Probe.Reliable.replies;
  check Alcotest.int "nothing outstanding" 0 (Probe.Reliable.outstanding rel)

(* --- determinism under sharding ------------------------------------- *)

let zero_stats =
  {
    Fault.lost_down = 0;
    dropped = 0;
    corrupt_header = 0;
    corrupt_fcs = 0;
    frozen_arrivals = 0;
    restarts = 0;
  }

let sum_stats (a : Fault.stats) (b : Fault.stats) =
  {
    Fault.lost_down = a.Fault.lost_down + b.Fault.lost_down;
    dropped = a.Fault.dropped + b.Fault.dropped;
    corrupt_header = a.Fault.corrupt_header + b.Fault.corrupt_header;
    corrupt_fcs = a.Fault.corrupt_fcs + b.Fault.corrupt_fcs;
    frozen_arrivals = a.Fault.frozen_arrivals + b.Fault.frozen_arrivals;
    restarts = a.Fault.restarts + b.Fault.restarts;
  }

let stats_fp (s : Fault.stats) =
  [
    s.Fault.lost_down; s.Fault.dropped; s.Fault.corrupt_header;
    s.Fault.corrupt_fcs; s.Fault.frozen_arrivals; s.Fault.restarts;
  ]

let build_fat_tree eng =
  let ft =
    Topology.fat_tree eng ~ecmp:true ~k:4 ~bps:1_000_000_000
      ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* Every fault class at once. Rebuilt per replica from the same seed:
   the schedule is a pure description. The faulted cables are host
   access links (and the edge switch above host 0), which carry every
   frame those hosts send or receive — ECMP hashing can starve an
   arbitrary core uplink, but never an access link. *)
let chaos_schedule net =
  let f = Fault.create ~seed:99 in
  let hosts = Array.of_list (Net.hosts net) in
  let access i = (hosts.(i).Net.node_id, 0) in
  let edge_above i =
    match Net.neighbors net hosts.(i).Net.node_id with
    | (_, peer, _) :: _ -> peer
    | [] -> invalid_arg "chaos_schedule: host has no uplink"
  in
  Fault.flap f ~from_:(ms 1) ~until_:(ms 8) ~period:(us 500) ~down_for:(us 200)
    (access 0);
  Fault.lossy f ~from_:0 ~until_:(ms 10) ~drop:0.3 ~corrupt:0.2 (access 5);
  Fault.freeze f ~from_:(ms 2) ~until_:(ms 4) (edge_above 1);
  Fault.degrade f ~from_:(ms 3) ~until_:(ms 9) ~rate_factor:0.5
    ~extra_delay:(us 5) (access 9);
  Fault.attach f net;
  f

let test_chaos_matches_sequential () =
  (* Sends stretch over ~7.6 ms so every fault window sees traffic. *)
  let traffic =
    Test_parsim.blast ~packets:20 ~gap_ns:400_000 ~payload_bytes:400
  in
  let until = ms 10 in
  (* Sequential reference. *)
  let eng = Engine.create () in
  let net = build_fat_tree eng in
  let fault = chaos_schedule net in
  traffic ~owns:(fun _ -> true) net;
  Engine.run eng ~until;
  let seq_events = Engine.events_processed eng in
  let seq_delivered = Net.frames_delivered net in
  let seq_drops = Test_parsim.total_drops ~owns:(fun _ -> true) net in
  let seq_fp = Test_parsim.net_fp ~owns:(fun _ -> true) net in
  let seq_faults = Fault.stats fault in
  check Alcotest.bool "chaos actually lost frames" true
    (seq_faults.Fault.lost_down > 0
    && seq_faults.Fault.dropped > 0
    && seq_faults.Fault.corrupt_header + seq_faults.Fault.corrupt_fcs > 0
    && seq_faults.Fault.frozen_arrivals > 0);
  check Alcotest.int "switch restarted" 1 seq_faults.Fault.restarts;
  List.iter
    (fun shards ->
      let faults = Array.make shards None in
      let stats, per_shard =
        Parsim.run ~shards ~until ~build:build_fat_tree
          ~setup:(fun ~shard ~owns net ->
            faults.(shard) <- Some (chaos_schedule net);
            traffic ~owns net)
          ~collect:(fun ~shard ~owns net ->
            ( Test_parsim.total_drops ~owns net,
              Test_parsim.net_fp ~owns net,
              Fault.stats (Option.get faults.(shard)) ))
          ()
      in
      let drops = Array.fold_left (fun a (d, _, _) -> a + d) 0 per_shard in
      let fp =
        Array.to_list per_shard
        |> List.concat_map (fun (_, fp, _) -> fp)
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let fstats =
        Array.fold_left (fun a (_, _, s) -> sum_stats a s) zero_stats per_shard
      in
      let lbl s = Printf.sprintf "%s (%d shards)" s shards in
      check Alcotest.int (lbl "events") seq_events stats.Parsim.events;
      check Alcotest.int (lbl "delivered") seq_delivered stats.Parsim.delivered;
      check Alcotest.int (lbl "drops") seq_drops drops;
      check Test_parsim.fp_t (lbl "switch registers") seq_fp fp;
      check
        Alcotest.(list int)
        (lbl "fault counters") (stats_fp seq_faults) (stats_fp fstats))
    [ 2; 4; 8 ]

(* --- localisation scenario matrix ------------------------------------ *)

let scenario_case scenario ~max_detection_ms () =
  let r = Faults.run_scenario ~seed:42 scenario in
  let name = Faults.scenario_name scenario in
  check Alcotest.bool (name ^ ": circuits degraded") true
    (r.Faults.sc_degraded_circuits > 0);
  check Alcotest.bool
    (Printf.sprintf "%s: detected within %.0f ms" name max_detection_ms)
    true
    (r.Faults.sc_detection_ms <= max_detection_ms);
  check Alcotest.bool (name ^ ": suspects nonempty") true
    (r.Faults.sc_suspects <> []);
  check Alcotest.bool (name ^ ": suspect set stays small") true
    (List.length r.Faults.sc_suspects <= 4);
  check Alcotest.bool (name ^ ": true link(s) localised") true
    r.Faults.sc_localised

let suite =
  [
    Alcotest.test_case "timeline: down/up/flap" `Quick test_timeline;
    Alcotest.test_case "rule validation" `Quick test_validation;
    Alcotest.test_case "corruption is always caught" `Quick
      test_corruption_never_delivered;
    Alcotest.test_case "drop probability" `Quick test_drop_probability;
    Alcotest.test_case "freeze wipes SRAM on restart" `Quick test_freeze_restart;
    Alcotest.test_case "degrade only slows" `Quick test_degrade_slows;
    Alcotest.test_case "reliable probe retries through outage" `Quick
      test_reliable_retries_through_outage;
    Alcotest.test_case "reliable probe gives up cleanly" `Quick
      test_reliable_gives_up;
    Alcotest.test_case "chaos matches sequential (2/4/8 shards)" `Quick
      test_chaos_matches_sequential;
    Alcotest.test_case "localise: permanent failure" `Quick
      (scenario_case Faults.Permanent ~max_detection_ms:100.0);
    Alcotest.test_case "localise: flapping link" `Quick
      (scenario_case Faults.Flap ~max_detection_ms:500.0);
    Alcotest.test_case "localise: two simultaneous failures" `Quick
      (scenario_case Faults.Dual_failure ~max_detection_ms:100.0);
    Alcotest.test_case "localise: lossy link" `Quick
      (scenario_case Faults.Lossy_link ~max_detection_ms:500.0);
  ]
