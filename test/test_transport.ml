(* Transport testbed tests: the NDP receiver-driven state machine under
   random trim/drop schedules, flowlet steering, DCTCP report-counter
   wraparound, and FCT workload validation. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- NDP over a two-switch chain ---------------------------------------- *)

(* A deliberately shallow data queue (3 KB, less than the 8-packet
   spray) forces trims at every message start, so the NACK-on-trim path
   runs on every test; random access-link loss exercises the stall
   timer and the sender's liveness respray. *)
let ndp_bps = 100_000_000

let ndp_config =
  {
    Ndp.default_config with
    Ndp.payload_bytes = 1000;
    rtx_timeout_ns = Time_ns.ms 2;
    nack_burst = 4;
    data_queue_bytes = 3_000;
    pull_gap_ns =
      (42 + Ndp.header_bytes + 1000) * 8 * 1_000_000_000 / ndp_bps * 135 / 100;
  }

(* Runs [sizes] over a two-switch chain with two hosts per switch. Both
   left-side hosts send to the same right-side host (2:1 fan-in on its
   access link, so overlapping sprays overflow the shallow data queue
   and get trimmed), and every third message flows back the other way
   so endpoints play sender and receiver at once. [drop] > 0 adds a
   lossy episode on every access link that ends at 60% of the horizon,
   leaving a clean drain tail — the same shape as the chaos gate in
   bench/perf.exe. Returns the endpoints after the horizon. *)
let ndp_run ~drop ~seed sizes =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:2 ~bps:ndp_bps
      ~delay:(Time_ns.us 100) ()
  in
  let net = chain.Topology.net in
  let hosts =
    [|
      chain.Topology.hosts.(0).(0); chain.Topology.hosts.(0).(1);
      chain.Topology.hosts.(1).(0); chain.Topology.hosts.(1).(1);
    |]
  in
  Ndp.enable_network net ndp_config;
  let horizon = Time_ns.ms 60 in
  if drop > 0.0 then begin
    let f = Fault.create ~seed in
    let until_ = Time_ns.of_sec_f (Time_ns.to_sec_f horizon *. 0.6) in
    Array.iter
      (fun h -> Fault.lossy f ~from_:0 ~until_ ~drop (h.Net.node_id, 0))
      hosts;
    Fault.attach f net
  end;
  let eps =
    Array.map
      (fun h -> Ndp.create ~config:ndp_config (Stack.create net h) ~port:9000)
      hosts
  in
  List.iteri
    (fun i bytes ->
      let src, dst =
        match i mod 3 with
        | 0 -> (eps.(0), hosts.(2))
        | 1 -> (eps.(1), hosts.(2))
        | _ -> (eps.(2), hosts.(0))
      in
      Engine.at eng (Time_ns.us (100 * i)) (fun () ->
          ignore (Ndp.send src ~dst ~bytes)))
    sizes;
  Engine.run eng ~until:horizon;
  eps

let endpoint_ok e =
  let s = Ndp.stats e in
  s.Ndp.completed = s.Ndp.started
  && Ndp.outstanding e = 0
  && Ndp.invariants_ok e && Ndp.fold_rx_credit e

let test_ndp_clean () =
  let eps = ndp_run ~drop:0.0 ~seed:1 [ 25_000; 18_000; 12_000; 9_000 ] in
  Array.iteri
    (fun i ep ->
      check Alcotest.bool (Printf.sprintf "endpoint %d ok" i) true
        (endpoint_ok ep))
    eps;
  let total f = Array.fold_left (fun acc ep -> acc + f (Ndp.stats ep)) 0 eps in
  check Alcotest.int "all messages started" 4 (total (fun s -> s.Ndp.started));
  check Alcotest.int "all messages completed" 4
    (total (fun s -> s.Ndp.completed));
  (* Two overlapping sprays into one access link overflow the 3 KB data
     queue: the trim path must have fired. *)
  check Alcotest.bool "trims exercised" true
    (total (fun s -> s.Ndp.trimmed_rx) > 0);
  Array.iter
    (fun ep ->
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        "no violations" []
        (List.filter (fun (_, n) -> n > 0) (Ndp.violations ep)))
    eps

(* Every started message completes under any random trim/drop schedule,
   credit never leaks, and pull counters stay monotone — the endpoint
   audits the last two continuously ([invariants_ok] latches any
   violation), so one property run checks all three. *)
let prop_ndp_completes_under_loss =
  QCheck.Test.make ~name:"ndp completes under random trim/drop" ~count:8
    QCheck.(
      make ~print:Print.(triple int int (list int))
        Gen.(
          triple (int_range 0 10_000) (int_range 0 300)
            (list_size (int_range 1 4) (int_range 1_000 30_000))))
    (fun (seed, drop_m, sizes) ->
      let drop = float_of_int drop_m /. 10_000.0 in
      let eps = ndp_run ~drop ~seed sizes in
      Array.for_all endpoint_ok eps)

(* --- Flowlet steering ---------------------------------------------------- *)

let test_flowlet_boundary () =
  let fl = Flowlet.create ~gap_ns:1000 in
  check Alcotest.bool "never sent" true
    (Flowlet.boundary fl ~last_tx:(-1) ~now:0);
  check Alcotest.bool "inside burst" false
    (Flowlet.boundary fl ~last_tx:100 ~now:600);
  check Alcotest.bool "after gap" true
    (Flowlet.boundary fl ~last_tx:100 ~now:1100);
  check Alcotest.int "checks counted" 3 (Flowlet.checks fl);
  check Alcotest.int "boundaries counted" 2 (Flowlet.boundaries fl)

let test_flowlet_table_pins () =
  let tbl = Flowlet.Table.create ~size:16 ~gap_ns:1000 () in
  check Alcotest.int "stale bucket binds best" 2
    (Flowlet.Table.decide tbl ~key:5 ~now:0 ~best:2);
  check Alcotest.int "pinned within gap" 2
    (Flowlet.Table.decide tbl ~key:5 ~now:500 ~best:4);
  check Alcotest.int "rebinds after idle gap" 4
    (Flowlet.Table.decide tbl ~key:5 ~now:2_000 ~best:4);
  check Alcotest.int "rebinds counted" 2 (Flowlet.Table.rebinds tbl)

(* Steering is pure arithmetic over the caller's clock: two tables fed
   the same decision sequence agree on every path — the property the
   sharded runner relies on for bit-identical fingerprints. *)
let prop_flowlet_determinism =
  QCheck.Test.make ~name:"flowlet steering deterministic" ~count:100
    QCheck.(
      make ~print:Print.(list (triple int int int))
        Gen.(
          list_size (int_range 1 200)
            (triple (int_bound 4095) (int_bound 3_000) (int_bound 7))))
    (fun ops ->
      let mk () = Flowlet.Table.create ~size:64 ~gap_ns:1_000 () in
      let t1 = mk () and t2 = mk () in
      let now = ref 0 in
      List.for_all
        (fun (key, dt, best) ->
          now := !now + dt;
          Flowlet.Table.decide t1 ~key ~now:!now ~best
          = Flowlet.Table.decide t2 ~key ~now:!now ~best)
        ops
      && Flowlet.Table.rebinds t1 = Flowlet.Table.rebinds t2)

(* Within one burst (every inter-packet gap below gap_ns) the path never
   changes, whatever the load balancer's current "best" says — the
   CONGA no-reordering guarantee. *)
let prop_flowlet_no_reorder_within_burst =
  QCheck.Test.make ~name:"flowlet never re-steers inside a burst" ~count:100
    QCheck.(
      make ~print:Print.(list (pair int int))
        Gen.(
          list_size (int_range 1 100)
            (pair (int_bound 999) (int_bound 7))))
    (fun ops ->
      let tbl = Flowlet.Table.create ~size:16 ~gap_ns:1_000 () in
      let first = Flowlet.Table.decide tbl ~key:3 ~now:0 ~best:5 in
      let now = ref 0 in
      List.for_all
        (fun (dt, best) ->
          now := !now + dt;
          Flowlet.Table.decide tbl ~key:3 ~now:!now ~best = first)
        ops)

(* --- DCTCP receiver-report wraparound ------------------------------------ *)

let test_dctcp_u32_wrap () =
  check Alcotest.int "no wrap" 0x10 (Dctcp.u32_delta ~last:0x20 ~cur:0x30);
  check Alcotest.int "equal counters" 0
    (Dctcp.u32_delta ~last:0xABCD ~cur:0xABCD);
  (* Crossing 2^32: a plain subtraction would go negative here and the
     [d_total > 0] guard would freeze the sender's rate forever. *)
  check Alcotest.int "wraps across 2^32" 0x30
    (Dctcp.u32_delta ~last:0xFFFF_FFF0 ~cur:0x20);
  check Alcotest.int "one step at the boundary" 1
    (Dctcp.u32_delta ~last:0xFFFF_FFFF ~cur:0x0)

(* --- FCT workload validation --------------------------------------------- *)

let test_fct_rejects_bad_shape () =
  Alcotest.check_raises "run rejects shape = 1.0"
    (Invalid_argument "Fct: pareto_shape must be > 1.0") (fun () ->
      ignore (Fct.run Fct.Tcp_ctl { Fct.default with Fct.pareto_shape = 1.0 }));
  Alcotest.check_raises "fabric_run rejects shape < 1.0"
    (Invalid_argument "Fct: pareto_shape must be > 1.0") (fun () ->
      ignore
        (Fct.fabric_run Fct.Ndp_t
           { Fct.fabric_default with Fct.f_shape = 0.9 }))

let suite =
  [
    Alcotest.test_case "ndp clean completion with trims" `Quick test_ndp_clean;
    qtest prop_ndp_completes_under_loss;
    Alcotest.test_case "flowlet boundary detection" `Quick test_flowlet_boundary;
    Alcotest.test_case "flowlet table pins within gap" `Quick
      test_flowlet_table_pins;
    qtest prop_flowlet_determinism;
    qtest prop_flowlet_no_reorder_within_burst;
    Alcotest.test_case "dctcp u32 wraparound" `Quick test_dctcp_u32_wrap;
    Alcotest.test_case "fct rejects pareto shape <= 1" `Quick
      test_fct_rejects_bad_shape;
  ]
