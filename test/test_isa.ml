(* Tests for the TPP ISA: address map, instruction codec, the TPP
   section wire format, and full frames. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Vaddr ------------------------------------------------------------ *)

let test_vaddr_classify_encode_bijection () =
  (* Every address that classifies must encode back to itself. *)
  let mapped = ref 0 in
  for a = 0 to Vaddr.limit - 1 do
    match Vaddr.classify a with
    | Ok region ->
      incr mapped;
      check Alcotest.int (Printf.sprintf "addr 0x%03x" a) a (Vaddr.encode region)
    | Error _ -> ()
  done;
  check Alcotest.bool "most of the space is mapped" true (!mapped > 3000)

let test_vaddr_known_addresses () =
  check Alcotest.int "switch id at 0" 0 (Vaddr.encode (Vaddr.Switch Vaddr.Switch_stat.Switch_id));
  check Alcotest.int "queue size at 0x100" 0x100
    (Vaddr.encode (Vaddr.Link Vaddr.Port_stat.Queue_bytes));
  check Alcotest.int "link sram base" 0x180 (Vaddr.encode (Vaddr.Link_sram 0));
  check Alcotest.int "port array" (0x200 + 48 + 3)
    (Vaddr.encode (Vaddr.Port (3, Vaddr.Port_stat.Tx_bytes)));
  check Alcotest.int "meta base" 0x800 (Vaddr.encode (Vaddr.Meta Vaddr.Pkt_meta.Input_port));
  check Alcotest.int "sram base" 0x880 (Vaddr.encode (Vaddr.Sram 0))

let test_vaddr_holes () =
  (* Unused slots inside a namespace are classification errors. *)
  check Alcotest.bool "switch hole" true (Result.is_error (Vaddr.classify 0x050));
  check Alcotest.bool "link stat hole" true (Result.is_error (Vaddr.classify 0x17F));
  check Alcotest.bool "meta hole" true (Result.is_error (Vaddr.classify 0x87F));
  check Alcotest.bool "negative" true (Result.is_error (Vaddr.classify (-1)));
  check Alcotest.bool "beyond" true (Result.is_error (Vaddr.classify 0x1000))

let test_vaddr_names () =
  let resolve n = Result.get_ok (Vaddr.of_name n) in
  check Alcotest.int "Switch:SwitchID" 0 (resolve "Switch:SwitchID");
  check Alcotest.int "Link namespace" 0x100 (resolve "Link:QueueSize");
  check Alcotest.int "Queue namespace" 0x140 (resolve "Queue:QueueSize");
  check Alcotest.int "per-queue drop bytes" 0x143 (resolve "Queue:BytesDropped");
  check Alcotest.int "port stat name" (0x200 + 80 + 3) (resolve "Port:5:TxBytes");
  check Alcotest.int "sram name" (0x880 + 17) (resolve "Sram:17");
  check Alcotest.int "link sram name" (0x180 + 3) (resolve "LinkSram:3");
  check Alcotest.bool "unknown name" true (Result.is_error (Vaddr.of_name "Foo:Bar"));
  check Alcotest.bool "sram out of range" true
    (Result.is_error (Vaddr.of_name "Sram:99999"));
  check Alcotest.int "defines win" 0x42
    (Result.get_ok (Vaddr.of_name ~defines:[ ("My:Reg", 0x42) ] "My:Reg"))

let test_vaddr_name_roundtrip () =
  List.iter
    (fun (name, addr) ->
      check Alcotest.int name addr (Result.get_ok (Vaddr.of_name name)))
    (Vaddr.all_named ());
  (* to_name renders something of_name can resolve, for mapped regions. *)
  List.iter
    (fun a ->
      let name = Vaddr.to_name a in
      check Alcotest.int ("roundtrip " ^ name) a (Result.get_ok (Vaddr.of_name name)))
    [ 0x000; 0x104; 0x180; 0x213; 0x800; 0x880; 0xFFF ]

let test_vaddr_writable () =
  check Alcotest.bool "sram writable" true (Vaddr.writable (Vaddr.Sram 0));
  check Alcotest.bool "link sram writable" true (Vaddr.writable (Vaddr.Link_sram 1));
  check Alcotest.bool "stats read-only" false
    (Vaddr.writable (Vaddr.Link Vaddr.Port_stat.Queue_bytes));
  check Alcotest.bool "meta read-only" false
    (Vaddr.writable (Vaddr.Meta Vaddr.Pkt_meta.Input_port));
  check Alcotest.bool "switch read-only" false
    (Vaddr.writable (Vaddr.Switch Vaddr.Switch_stat.Version))

(* --- Instr codec ------------------------------------------------------ *)

let operand_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Instr.Sw v) (int_bound 0xFFF);
        map (fun v -> Instr.Pkt v) (int_bound 0xFFF);
        map (fun v -> Instr.Imm v) (int_bound 0xFFF);
        map (fun v -> Instr.Hop v) (int_bound 0xFFF);
      ])

let binop_gen =
  QCheck.Gen.oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Min; Instr.Max ]

let instr_gen =
  QCheck.Gen.(
    oneof
      [
        return Instr.Nop;
        return Instr.Halt;
        map (fun a -> Instr.Push a) operand_gen;
        map (fun a -> Instr.Pop a) operand_gen;
        map2 (fun a b -> Instr.Load (a, b)) operand_gen operand_gen;
        map2 (fun a b -> Instr.Store (a, b)) operand_gen operand_gen;
        map2 (fun a b -> Instr.Mov (a, b)) operand_gen operand_gen;
        map3 (fun op a b -> Instr.Binop (op, a, b)) binop_gen operand_gen operand_gen;
        map2 (fun a b -> Instr.Cstore (a, b)) operand_gen operand_gen;
        map2 (fun a b -> Instr.Cexec (a, b)) operand_gen operand_gen;
      ])

let instr_arbitrary =
  QCheck.make ~print:(Format.asprintf "%a" Instr.pp) instr_gen

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"instruction encode/decode roundtrip" ~count:500
    instr_arbitrary
    (fun i -> match Instr.decode (Instr.encode i) with
      | Ok j -> Instr.equal i j
      | Error _ -> false)

(* Same roundtrip through the byte-level writer/reader, with operand
   values biased to the 12-bit field edges where packing bugs live. *)
let boundary_operand_gen =
  QCheck.Gen.(
    let v = frequency [ (2, int_bound 0xFFF); (3, oneofl [ 0; 1; 0x7FF; 0x800; 0xFFE; 0xFFF ]) ] in
    oneof
      [
        map (fun v -> Instr.Sw v) v;
        map (fun v -> Instr.Pkt v) v;
        map (fun v -> Instr.Imm v) v;
        map (fun v -> Instr.Hop v) v;
      ])

let boundary_instr_gen =
  QCheck.Gen.(
    let op = boundary_operand_gen in
    oneof
      [
        return Instr.Nop;
        return Instr.Halt;
        map (fun a -> Instr.Push a) op;
        map (fun a -> Instr.Pop a) op;
        map2 (fun a b -> Instr.Load (a, b)) op op;
        map2 (fun a b -> Instr.Store (a, b)) op op;
        map2 (fun a b -> Instr.Mov (a, b)) op op;
        map3 (fun o a b -> Instr.Binop (o, a, b)) binop_gen op op;
        map2 (fun a b -> Instr.Cstore (a, b)) op op;
        map2 (fun a b -> Instr.Cexec (a, b)) op op;
      ])

let prop_instr_wire_roundtrip =
  QCheck.Test.make ~name:"instruction write/read roundtrip (12-bit boundaries)"
    ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Instr.pp) boundary_instr_gen)
    (fun i ->
      let w = Buf.Writer.create () in
      Instr.write w i;
      match Instr.read (Buf.Reader.of_bytes (Buf.Writer.contents w)) with
      | Ok j -> Instr.equal i j
      | Error _ -> false)

let test_instr_bad_opcode () =
  check Alcotest.bool "opcode 15 rejected" true
    (Result.is_error (Instr.decode 0xF0000000l))

let test_instr_operand_overflow () =
  Alcotest.check_raises "13-bit operand"
    (Invalid_argument "Instr.encode: operand value exceeds 12 bits") (fun () ->
      ignore (Instr.encode (Instr.Push (Instr.Sw 0x1000))))

let test_instr_size () =
  let w = Buf.Writer.create () in
  Instr.write w (Instr.Push (Instr.Sw 0x100));
  check Alcotest.int "4 bytes" Instr.size (Buf.Writer.length w)

(* --- Tpp section ------------------------------------------------------ *)

let sample_program =
  [ Instr.Push (Instr.Sw 0x000); Instr.Push (Instr.Sw 0x100); Instr.Halt ]

let test_tpp_make_layout () =
  let pool = Bytes.make 8 '\000' in
  Buf.set_u32i pool 0 111;
  Buf.set_u32i pool 4 222;
  let tpp = Prog.make ~pool ~program:sample_program ~mem_len:16 () in
  check Alcotest.int "base after pool" 8 tpp.Prog.base;
  check Alcotest.int "sp at base" 8 tpp.Prog.sp;
  check Alcotest.int "memory size" 24 (Bytes.length tpp.Prog.memory);
  check Alcotest.int "pool word" 111 (Prog.mem_get tpp 0);
  check Alcotest.int "pool word 2" 222 (Prog.mem_get tpp 4);
  check Alcotest.int "section size" (16 + 12 + 24) (Prog.section_size tpp);
  check (Alcotest.list Alcotest.int) "stack empty" [] (Prog.stack_values tpp)

let test_tpp_alignment_checks () =
  Alcotest.check_raises "mem alignment"
    (Invalid_argument "Tpp.make: mem_len must be word aligned") (fun () ->
      ignore (Prog.make ~program:[] ~mem_len:6 ()));
  Alcotest.check_raises "hop mode needs perhop"
    (Invalid_argument "Tpp.make: hop addressing needs perhop_len > 0") (fun () ->
      ignore (Prog.make ~addr_mode:Prog.Hop_addressed ~program:[] ~mem_len:8 ()))

let roundtrip_tpp tpp =
  let w = Buf.Writer.create () in
  Prog.write w tpp;
  Prog.read (Buf.Reader.of_bytes (Buf.Writer.contents w))

let test_tpp_wire_roundtrip () =
  let tpp = Prog.make ~program:sample_program ~mem_len:32 () in
  tpp.Prog.sp <- 8;
  tpp.Prog.hop <- 2;
  Prog.mem_set tpp 4 0xCAFE;
  match roundtrip_tpp tpp with
  | Error e -> Alcotest.fail e
  | Ok got ->
    check Alcotest.int "sp" 8 got.Prog.sp;
    check Alcotest.int "hop" 2 got.Prog.hop;
    check Alcotest.int "mem word" 0xCAFE (Prog.mem_get got 4);
    check Alcotest.int "program len" 3 (Array.length got.Prog.program);
    check Alcotest.bool "program equal" true (got.Prog.program = tpp.Prog.program);
    check Alcotest.bool "mode" true (got.Prog.addr_mode = Prog.Stack)

let test_tpp_hop_mode_roundtrip () =
  let tpp =
    Prog.make ~addr_mode:Prog.Hop_addressed ~perhop_len:8 ~program:sample_program
      ~mem_len:32 ~inner_ethertype:Ethernet.ethertype_ipv4 ()
  in
  match roundtrip_tpp tpp with
  | Error e -> Alcotest.fail e
  | Ok got ->
    check Alcotest.bool "mode" true (got.Prog.addr_mode = Prog.Hop_addressed);
    check Alcotest.int "perhop" 8 got.Prog.perhop_len;
    check Alcotest.int "inner ethertype" Ethernet.ethertype_ipv4 got.Prog.inner_ethertype

let test_tpp_truncated_rejected () =
  let tpp = Prog.make ~program:sample_program ~mem_len:32 () in
  let w = Buf.Writer.create () in
  Prog.write w tpp;
  let full = Buf.Writer.contents w in
  let cut = Bytes.sub full 0 (Bytes.length full - 5) in
  check Alcotest.bool "truncated" true (Result.is_error (Prog.read (Buf.Reader.of_bytes cut)))

let test_tpp_bad_fields_rejected () =
  let reject ?(mangle = fun _ -> ()) name =
    let tpp = Prog.make ~program:sample_program ~mem_len:16 () in
    let w = Buf.Writer.create () in
    Prog.write w tpp;
    let b = Buf.Writer.contents w in
    mangle b;
    check Alcotest.bool name true (Result.is_error (Prog.read (Buf.Reader.of_bytes b)))
  in
  reject "bad version" ~mangle:(fun b -> Bytes.set_uint8 b 0 9);
  reject "misaligned tpp_len" ~mangle:(fun b -> Bytes.set_uint16_be b 2 5);
  reject "sp beyond memory" ~mangle:(fun b -> Bytes.set_uint16_be b 6 999);
  reject "bad opcode in program" ~mangle:(fun b -> Bytes.set_uint8 b 16 0xF0)

let test_tpp_copy_is_deep () =
  let tpp = Prog.make ~program:sample_program ~mem_len:16 () in
  let dup = Prog.copy tpp in
  Prog.mem_set tpp 0 7;
  check Alcotest.int "copy unaffected" 0 (Prog.mem_get dup 0);
  (* Mutable execution state is private, but the immutable program and
     the compiled-code cell are shared so a template's whole family
     compiles at most once. *)
  check Alcotest.bool "program array shared" true
    (tpp.Prog.program == dup.Prog.program);
  check Alcotest.bool "exec cache shared" true (tpp.Prog.cache == dup.Prog.cache);
  check Alcotest.string "same program identity" (Prog.program_key tpp)
    (Prog.program_key dup)

let test_tpp_hop_block () =
  let tpp =
    Prog.make ~addr_mode:Prog.Hop_addressed ~perhop_len:8 ~program:[] ~mem_len:24 ()
  in
  Prog.mem_set tpp 8 5;
  Prog.mem_set tpp 12 6;
  check (Alcotest.list Alcotest.int) "block 1" [ 5; 6 ] (Prog.hop_block tpp ~hop:1)

(* --- Frame ------------------------------------------------------------ *)

let hosts () =
  ( Mac.of_host_id 1, Mac.of_host_id 2,
    Ipv4.Addr.of_host_id 1, Ipv4.Addr.of_host_id 2 )

let test_frame_udp_roundtrip () =
  let src_mac, dst_mac, src_ip, dst_ip = hosts () in
  let frame =
    Frame.udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port:10 ~dst_port:20
      ~payload:(Bytes.of_string "payload!") ()
  in
  match Frame.parse (Frame.serialize frame) with
  | Error e -> Alcotest.fail e
  | Ok got ->
    check Alcotest.bool "eth" true (Frame.eth got = Frame.eth frame);
    check Alcotest.bool "ip" true (Frame.ip got = Frame.ip frame);
    check Alcotest.bool "udp" true (Frame.udp got = Frame.udp frame);
    check Alcotest.string "payload" "payload!" (Bytes.to_string (Frame.payload got))

let test_frame_tpp_roundtrip () =
  let src_mac, dst_mac, src_ip, dst_ip = hosts () in
  let tpp = Prog.make ~program:sample_program ~mem_len:16 () in
  let frame =
    Frame.udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port:10 ~dst_port:20 ~tpp
      ~payload:(Bytes.of_string "x") ()
  in
  match Frame.parse (Frame.serialize frame) with
  | Error e -> Alcotest.fail e
  | Ok got ->
    check Alcotest.bool "has tpp" true (Option.is_some got.Frame.tpp);
    check Alcotest.int "tpp ethertype" Ethernet.ethertype_tpp
      (Frame.ethertype got);
    check Alcotest.bool "inner ip survived" true (Frame.has_ip got);
    let got_tpp = Option.get got.Frame.tpp in
    check Alcotest.int "inner ethertype set" Ethernet.ethertype_ipv4
      got_tpp.Prog.inner_ethertype

let test_frame_wire_size () =
  let src_mac, dst_mac, src_ip, dst_ip = hosts () in
  let small =
    Frame.udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port:1 ~dst_port:2
      ~payload:Bytes.empty ()
  in
  check Alcotest.int "ethernet minimum" 64 (Frame.wire_size small);
  let big =
    Frame.udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port:1 ~dst_port:2
      ~payload:(Bytes.create 1000) ()
  in
  check Alcotest.int "headers + payload + fcs" (14 + 20 + 8 + 1000 + 4)
    (Frame.wire_size big)

let test_frame_consistency_checks () =
  let src_mac, dst_mac, _, _ = hosts () in
  let tpp = Prog.make ~program:[] ~mem_len:8 () in
  Alcotest.check_raises "tpp on ipv4 ethertype"
    (Invalid_argument "Frame.make: TPP section on non-TPP ethertype") (fun () ->
      ignore
        (Frame.make ~tpp
           ~eth:{ Ethernet.dst = dst_mac; src = src_mac;
                  ethertype = Ethernet.ethertype_ipv4 }
           ()));
  Alcotest.check_raises "udp without ip"
    (Invalid_argument "Frame.make: UDP header without IPv4 header") (fun () ->
      ignore
        (Frame.make
           ~udp:{ Udp.src_port = 1; dst_port = 2 }
           ~eth:{ Ethernet.dst = dst_mac; src = src_mac; ethertype = 0x1234 }
           ()))

let test_frame_garbage_rejected () =
  check Alcotest.bool "truncated eth" true
    (Result.is_error (Frame.parse (Bytes.create 6)));
  (* Valid eth header claiming TPP, then garbage. *)
  let w = Buf.Writer.create () in
  Ethernet.write w
    { Ethernet.dst = Mac.of_host_id 1; src = Mac.of_host_id 2;
      ethertype = Ethernet.ethertype_tpp };
  Buf.Writer.string w "garbagegarbage";
  check Alcotest.bool "bad tpp section" true
    (Result.is_error (Frame.parse (Buf.Writer.contents w)))

let test_frame_clone_independent () =
  let src_mac, dst_mac, src_ip, dst_ip = hosts () in
  let tpp = Prog.make ~program:[] ~mem_len:8 () in
  let frame =
    Frame.udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port:1 ~dst_port:2 ~tpp
      ~payload:Bytes.empty ()
  in
  let copy = Frame.clone frame in
  check Alcotest.bool "fresh id" true (copy.Frame.id <> frame.Frame.id);
  (Option.get frame.Frame.tpp).Prog.sp <- 4;
  check Alcotest.int "tpp state decoupled" 0 (Option.get copy.Frame.tpp).Prog.sp

let suite =
  [
    Alcotest.test_case "vaddr bijection" `Quick test_vaddr_classify_encode_bijection;
    Alcotest.test_case "vaddr known addresses" `Quick test_vaddr_known_addresses;
    Alcotest.test_case "vaddr holes" `Quick test_vaddr_holes;
    Alcotest.test_case "vaddr names" `Quick test_vaddr_names;
    Alcotest.test_case "vaddr name roundtrip" `Quick test_vaddr_name_roundtrip;
    Alcotest.test_case "vaddr writability" `Quick test_vaddr_writable;
    qtest prop_instr_roundtrip;
    qtest prop_instr_wire_roundtrip;
    Alcotest.test_case "instr bad opcode" `Quick test_instr_bad_opcode;
    Alcotest.test_case "instr operand overflow" `Quick test_instr_operand_overflow;
    Alcotest.test_case "instr size" `Quick test_instr_size;
    Alcotest.test_case "tpp layout" `Quick test_tpp_make_layout;
    Alcotest.test_case "tpp alignment checks" `Quick test_tpp_alignment_checks;
    Alcotest.test_case "tpp wire roundtrip" `Quick test_tpp_wire_roundtrip;
    Alcotest.test_case "tpp hop-mode roundtrip" `Quick test_tpp_hop_mode_roundtrip;
    Alcotest.test_case "tpp truncated rejected" `Quick test_tpp_truncated_rejected;
    Alcotest.test_case "tpp bad fields rejected" `Quick test_tpp_bad_fields_rejected;
    Alcotest.test_case "tpp deep copy" `Quick test_tpp_copy_is_deep;
    Alcotest.test_case "tpp hop blocks" `Quick test_tpp_hop_block;
    Alcotest.test_case "frame udp roundtrip" `Quick test_frame_udp_roundtrip;
    Alcotest.test_case "frame tpp roundtrip" `Quick test_frame_tpp_roundtrip;
    Alcotest.test_case "frame wire size" `Quick test_frame_wire_size;
    Alcotest.test_case "frame consistency" `Quick test_frame_consistency_checks;
    Alcotest.test_case "frame garbage rejected" `Quick test_frame_garbage_rejected;
    Alcotest.test_case "frame clone" `Quick test_frame_clone_independent;
  ]
