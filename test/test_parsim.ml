(* The parallel (sharded, conservative PDES) engine: partitioning
   sanity, and — the load-bearing property — that a run sharded across
   1, 2 or 4 domains produces exactly the sequential engine's event,
   delivery and drop counts and final switch register state. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- workload: every host streams TPP-tagged UDP to rotating peers --- *)

let collect_src = "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\n"

(* Uniform frame sizes keep same-instant events commutative (the
   determinism precondition, DESIGN.md §8). *)
let blast ~packets ~gap_ns ~payload_bytes ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src) in
  let payload = Bytes.create payload_bytes in
  for i = 0 to n - 1 do
    let src = hosts.(i) in
    if owns src.Net.node_id then
      for j = 0 to packets - 1 do
        let t = 1 + (i * 37) + (j * gap_ns) in
        Engine.at eng t (fun () ->
            let dst = hosts.((i + 1 + (j mod (n - 1))) mod n) in
            let frame =
              Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
                ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:(4000 + i)
                ~dst_port:9 ~tpp:(Prog.copy tpp) ~payload ()
            in
            Net.host_send net src frame)
      done
  done

(* --- switch register fingerprints ----------------------------------- *)

module SS = Switch_state

let sram_hash (st : SS.t) =
  Array.fold_left (fun acc w -> (acc * 1_000_003) + w) 0 st.SS.sram

let port_fp (p : SS.Port.t) =
  [
    p.SS.Port.rx_bytes; p.rx_pkts; p.tx_bytes; p.tx_pkts; p.drops;
    p.offered_bytes; p.queue_bytes;
  ]

let switch_fp id sw =
  let st = Switch.state sw in
  ( id,
    [
      st.SS.packets_seen; st.SS.bytes_seen; st.SS.drops; st.SS.tpp_execs;
      st.SS.tpp_faults; st.SS.tpp_cycles; sram_hash st;
    ]
    @ List.concat_map port_fp (Array.to_list st.SS.ports) )

let net_fp ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.map (fun (id, sw) -> switch_fp id sw)

let total_drops ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.fold_left (fun a (_, sw) -> a + (Switch.state sw).SS.drops) 0

(* Sequential reference: same builder and traffic, one engine. *)
let run_sequential ~build ~traffic ~until =
  let eng = Engine.create () in
  let net = build eng in
  traffic ~owns:(fun _ -> true) net;
  Engine.run eng ~until;
  ( Engine.events_processed eng,
    Net.frames_delivered net,
    total_drops ~owns:(fun _ -> true) net,
    net_fp ~owns:(fun _ -> true) net )

let run_sharded ~shards ~build ~traffic ~until =
  let stats, fps =
    Parsim.run ~shards ~until ~build
      ~setup:(fun ~shard:_ ~owns net -> traffic ~owns net)
      ~collect:(fun ~shard:_ ~owns net ->
        (total_drops ~owns net, net_fp ~owns net))
      ()
  in
  let drops = Array.fold_left (fun a (d, _) -> a + d) 0 fps in
  let fp =
    Array.to_list fps
    |> List.concat_map snd
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (stats, drops, fp)

let fp_t = Alcotest.(list (pair int (list int)))

let check_matches_sequential ~build ~traffic ~until shard_counts =
  let seq_events, seq_delivered, seq_drops, seq_fp =
    run_sequential ~build ~traffic ~until
  in
  List.iter
    (fun shards ->
      let stats, drops, fp = run_sharded ~shards ~build ~traffic ~until in
      let lbl s = Printf.sprintf "%s (%d shards)" s shards in
      check Alcotest.int (lbl "events") seq_events stats.Parsim.events;
      check Alcotest.int (lbl "delivered") seq_delivered stats.Parsim.delivered;
      check Alcotest.int (lbl "drops") seq_drops drops;
      check fp_t (lbl "switch registers") seq_fp fp;
      (* These workloads quiesce before the horizon, so every frame
         that crossed a boundary must have returned to its receiving
         shard's pool (the cross-domain leak fix). *)
      check Alcotest.int (lbl "boundary pool drained") 0
        stats.Parsim.boundary_outstanding)
    shard_counts;
  (seq_delivered, seq_drops)

(* --- partitioning --------------------------------------------------- *)

let test_plan_fat_tree () =
  let eng = Engine.create () in
  let ft =
    Topology.fat_tree eng ~k:4 ~bps:1_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  let net = ft.Topology.f_net in
  let plan = Parsim.Plan.make net ~shards:4 in
  check Alcotest.int "lookahead = min link delay" (Time_ns.us 1)
    plan.Parsim.Plan.lookahead;
  check Alcotest.bool "boundary links exist" true (plan.Parsim.Plan.cut_links > 0);
  Array.iter
    (fun w -> check Alcotest.bool "every shard loaded" true (w > 0))
    plan.Parsim.Plan.shard_weight;
  (* Hosts are pinned with their edge (ToR) switch. *)
  List.iter
    (fun h ->
      let id = h.Net.node_id in
      match Net.neighbors net id with
      | (_, tor, _) :: _ ->
        check Alcotest.int "host rides its ToR's shard"
          plan.Parsim.Plan.owner.(tor) plan.Parsim.Plan.owner.(id)
      | [] -> Alcotest.fail "unattached host")
    (Net.hosts net)

let test_sharding_hooks () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let sw = Net.add_switch net (Switch.create ~id:1 ~num_ports:2 ()) in
  let a = Net.add_host net ~name:"a" in
  let b = Net.add_host net ~name:"b" in
  Net.connect net (a.Net.node_id, 0) (sw, 0) ~bps:1_000_000 ~delay:5;
  Net.connect net (b.Net.node_id, 0) (sw, 1) ~bps:1_000_000 ~delay:7;
  check Alcotest.int "link delay" 7 (Net.link_delay net (b.Net.node_id, 0));
  check Alcotest.bool "unsharded owns all" true (Net.owns net sw);
  let owner = [| 0; 0; 1 |] in  (* b lives on another shard *)
  Net.set_sharding net ~owner ~shard:0
    ~emit:(fun ~arrival:_ ~emitted:_ ~dst:_ _ -> ());
  check Alcotest.bool "owns local" true (Net.owns net a.Net.node_id);
  check Alcotest.bool "foreign node" false (Net.owns net b.Net.node_id);
  let frame =
    Frame.udp_frame ~src_mac:b.Net.mac ~dst_mac:a.Net.mac ~src_ip:b.Net.ip
      ~dst_ip:a.Net.ip ~src_port:1 ~dst_port:2 ~payload:(Bytes.create 8) ()
  in
  Alcotest.check_raises "foreign host_send rejected"
    (Invalid_argument "Net.host_send: host is owned by another shard")
    (fun () -> Net.host_send net b frame)

(* --- sequential equivalence ----------------------------------------- *)

(* Congested dumbbell: a 20x overcommitted core link, so the left switch
   tail-drops — drop accounting must survive sharding exactly. *)
let test_dumbbell_matches_sequential () =
  let build eng =
    let d =
      Topology.dumbbell eng ~pairs:5 ~core_bps:100_000_000
        ~edge_bps:1_000_000_000 ~delay:(Time_ns.us 2) ()
    in
    (* Shallow buffers: the overcommitted core port must tail-drop. *)
    List.iter
      (fun (_, sw) ->
        for p = 0 to Switch.num_ports sw - 1 do
          Switch.set_queue_limit sw ~port:p ~bytes:8_000
        done)
      (Net.switches d.Topology.d_net);
    d.Topology.d_net
  in
  let traffic = blast ~packets:60 ~gap_ns:2_000 ~payload_bytes:600 in
  let _, drops =
    check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 20) [ 1; 2; 4 ]
  in
  check Alcotest.bool "congestion actually dropped frames" true (drops > 0)

let test_fat_tree_matches_sequential () =
  let build eng =
    let ft =
      Topology.fat_tree eng ~ecmp:true ~k:4 ~bps:1_000_000_000
        ~delay:(Time_ns.us 1) ()
    in
    ft.Topology.f_net
  in
  let traffic = blast ~packets:20 ~gap_ns:4_000 ~payload_bytes:400 in
  let delivered, _ =
    check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 10) [ 2; 4; 8 ]
  in
  check Alcotest.bool "traffic flowed" true (delivered > 0)

(* More shards than switches: the extra shards idle at the barriers but
   the run must still complete and agree with the sequential engine. *)
let test_more_shards_than_switches () =
  let build eng =
    let d =
      Topology.dumbbell eng ~pairs:2 ~core_bps:1_000_000_000
        ~edge_bps:1_000_000_000 ~delay:(Time_ns.us 3) ()
    in
    d.Topology.d_net
  in
  let traffic = blast ~packets:8 ~gap_ns:5_000 ~payload_bytes:200 in
  ignore
    (check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 5) [ 5 ])

(* --- barrier -------------------------------------------------------- *)

let test_barrier_poison_mid_spin () =
  (* [spin:max_int] forces the waiter to stay in the spin loop forever
     (it would never fall through to the condvar), so releasing it via
     [poison] proves spinners observe the poison flag mid-spin — on any
     machine, including 1-core CI where the default heuristic would
     pick spin = 0. *)
  let b = Parsim.Barrier.create ~spin:max_int 2 in
  let waiter =
    Domain.spawn (fun () ->
        match Parsim.Barrier.await b with
        | () -> false
        | exception Parsim.Barrier.Poisoned -> true)
  in
  (* Let the waiter reach its spin loop (await's entry check covers the
     race if poison wins). *)
  for _ = 1 to 50_000 do
    Domain.cpu_relax ()
  done;
  Parsim.Barrier.poison b;
  check Alcotest.bool "spinning waiter released with Poisoned" true
    (Domain.join waiter);
  check Alcotest.bool "poison is sticky for future waiters" true
    (match Parsim.Barrier.await b with
    | () -> false
    | exception Parsim.Barrier.Poisoned -> true)

(* --- boundary chunk codec ------------------------------------------- *)

(* A deterministic little frame zoo: plain UDP of several sizes and a
   TPP-tagged frame, with a nonzero hop count (the one Meta field that
   must survive the boundary). *)
let boundary_frame ~variant ~i =
  let tpp =
    if variant mod 3 = 0 then
      Some (Prog.copy (Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src)))
    else None
  in
  let payload = Bytes.make (20 + (variant mod 5 * 111)) (Char.chr (i land 0xff)) in
  let f =
    Frame.udp_frame
      ~src_mac:(Mac.of_host_id (i + 1))
      ~dst_mac:(Mac.of_host_id (i + 2))
      ~src_ip:(Ipv4.Addr.of_host_id (i + 1))
      ~dst_ip:(Ipv4.Addr.of_host_id (i + 2))
      ~src_port:(4000 + i) ~dst_port:9 ?tpp ~payload ()
  in
  f.Frame.meta.Meta.hop_count <- variant land 7;
  f

let prop_boundary_codec_roundtrip =
  QCheck.Test.make
    ~name:"boundary codec: encode/decode roundtrips frames and stamps" ~count:30
    QCheck.(pair (list_of_size Gen.(1 -- 10) (int_range 0 11)) small_nat)
    (fun (variants, base) ->
      let chunk = Parsim.Boundary.chunk ~capacity:64 () in
      let pool = Frame.Pool.create () in
      let expected =
        List.mapi
          (fun i variant ->
            let f = boundary_frame ~variant ~i in
            let arrival = 1_000 + (base * 17) + (i * 31) in
            let emitted = arrival - 7 in
            let seq = i + 1 in
            let dst = (variant mod 4, (variant / 4) mod 3) in
            let image = Frame.serialize f in
            Parsim.Boundary.append chunk ~arrival ~emitted ~seq ~dst f;
            ( arrival, emitted, seq, fst dst, snd dst, f.Frame.id,
              f.Frame.meta.Meta.hop_count, image ))
          variants
      in
      let got = ref [] in
      Parsim.Boundary.decode chunk ~pool
        (fun ~arrival ~emitted ~seq ~dst_node ~dst_port f ->
          (* Offsets recomputed by arithmetic must match the validating
             parser on the same image. *)
          let image = Frame.serialize f in
          let oracle = Result.get_ok (Frame.parse image) in
          check Alcotest.int "ip_off" oracle.Frame.ip_off f.Frame.ip_off;
          check Alcotest.int "udp_off" oracle.Frame.udp_off f.Frame.udp_off;
          check Alcotest.int "pay_off" oracle.Frame.pay_off f.Frame.pay_off;
          check Alcotest.bool "tpp presence"
            (Option.is_some oracle.Frame.tpp)
            (Option.is_some f.Frame.tpp);
          got :=
            ( arrival, emitted, seq, dst_node, dst_port, f.Frame.id,
              f.Frame.meta.Meta.hop_count, image )
            :: !got);
      check Alcotest.int "chunk count" (List.length expected)
        (Parsim.Boundary.count chunk);
      List.rev !got = expected)

let prop_chunk_recycle_never_aliases =
  QCheck.Test.make
    ~name:"chunk recycling never aliases a live frame" ~count:20
    QCheck.(list_of_size Gen.(1 -- 6) (int_range 0 11))
    (fun variants ->
      let chunk = Parsim.Boundary.chunk ~capacity:64 () in
      let pool = Frame.Pool.create () in
      let encode vs off =
        List.iteri
          (fun i v ->
            let f = boundary_frame ~variant:v ~i:(i + off) in
            Parsim.Boundary.append chunk ~arrival:(100 + i) ~emitted:(99 + i)
              ~seq:(i + 1) ~dst:(0, 0) f)
          vs
      in
      encode variants 0;
      let live = ref [] in
      Parsim.Boundary.decode chunk ~pool
        (fun ~arrival:_ ~emitted:_ ~seq:_ ~dst_node:_ ~dst_port:_ f ->
          live := (f, Frame.serialize f) :: !live);
      (* Reuse the chunk for a different batch — if a materialized frame
         aliased the chunk buffer, its image would now change. *)
      Parsim.Boundary.reset chunk;
      encode (List.map (fun v -> (v + 5) mod 12) variants) 64;
      List.for_all
        (fun (f, image) -> Bytes.equal image (Frame.serialize f))
        !live)

(* --- inbox merge order ---------------------------------------------- *)

let prop_inbox_sorts_like_compare_msg =
  QCheck.Test.make
    ~name:"inbox merge order is compare_msg, regardless of insertion order"
    ~count:100
    QCheck.(
      pair (list_of_size Gen.(0 -- 40) (triple small_nat small_nat (int_range 0 7)))
        int)
    (fun (rows, salt) ->
      (* seq = insertion index keeps (src, seq) unique, as in the real
         protocol (each producer's counter is monotone). *)
      let msgs =
        List.mapi
          (fun i (arr, emit, src) -> (arr land 7, emit land 3, src, i))
          rows
      in
      (* Insert in a salted pseudo-random order. *)
      let shuffled =
        List.sort
          (fun (_, _, _, a) (_, _, _, b) ->
            compare ((a * 2654435761) lxor salt) ((b * 2654435761) lxor salt))
          msgs
      in
      let inbox = Parsim.Inbox.create () in
      let dummy = Frame.placeholder () in
      List.iter
        (fun (arrival, emitted, src_shard, seq) ->
          Parsim.Inbox.add inbox ~arrival ~emitted ~src_shard ~seq ~dst_node:0
            ~dst_port:0 dummy)
        shuffled;
      Parsim.Inbox.sort inbox;
      let got = ref [] in
      Parsim.Inbox.iter_sorted inbox
        (fun ~arrival ~emitted ~src_shard ~seq ~dst_node:_ ~dst_port:_ _ ->
          got := (arrival, emitted, src_shard, seq) :: !got);
      Parsim.Inbox.clear inbox;
      List.rev !got = List.sort Parsim.compare_msg msgs)

let prop_random_topology_deterministic =
  QCheck.Test.make ~name:"random fabric: 1/2/4 shards match sequential engine"
    ~count:5
    QCheck.(
      quad (int_range 2 5) (int_range 4 9) (int_range 0 3) (int_range 0 10_000))
    (fun (switches, hosts, extra_links, seed) ->
      let build eng =
        let r =
          Topology.random eng ~switches ~hosts ~extra_links ~seed ~ecmp:true
            ~bps:200_000_000 ~delay:(Time_ns.us 2) ()
        in
        (* Tight queues so random runs exercise tail-drop paths too. *)
        List.iter
          (fun (_, sw) ->
            for p = 0 to Switch.num_ports sw - 1 do
              Switch.set_queue_limit sw ~port:p ~bytes:4_000
            done)
          (Net.switches r.Topology.r_net);
        r.Topology.r_net
      in
      let payload_bytes = 200 + (100 * (seed mod 4)) in
      let traffic = blast ~packets:12 ~gap_ns:3_000 ~payload_bytes in
      ignore
        (check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 10)
           [ 1; 2; 4 ]);
      true)

let suite =
  [
    Alcotest.test_case "plan: fat-tree partition" `Quick test_plan_fat_tree;
    Alcotest.test_case "net sharding hooks" `Quick test_sharding_hooks;
    Alcotest.test_case "barrier poison mid-spin" `Quick
      test_barrier_poison_mid_spin;
    qtest prop_boundary_codec_roundtrip;
    qtest prop_chunk_recycle_never_aliases;
    qtest prop_inbox_sorts_like_compare_msg;
    Alcotest.test_case "dumbbell w/ drops matches sequential" `Quick
      test_dumbbell_matches_sequential;
    Alcotest.test_case "fat-tree matches sequential" `Quick
      test_fat_tree_matches_sequential;
    Alcotest.test_case "more shards than switches" `Quick
      test_more_shards_than_switches;
    qtest prop_random_topology_deterministic;
  ]
