(* The parallel (sharded, conservative PDES) engine: partitioning
   sanity, and — the load-bearing property — that a run sharded across
   1, 2 or 4 domains produces exactly the sequential engine's event,
   delivery and drop counts and final switch register state. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- workload: every host streams TPP-tagged UDP to rotating peers --- *)

let collect_src = "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\n"

(* Uniform frame sizes keep same-instant events commutative (the
   determinism precondition, DESIGN.md §8). *)
let blast ~packets ~gap_ns ~payload_bytes ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 collect_src) in
  let payload = Bytes.create payload_bytes in
  for i = 0 to n - 1 do
    let src = hosts.(i) in
    if owns src.Net.node_id then
      for j = 0 to packets - 1 do
        let t = 1 + (i * 37) + (j * gap_ns) in
        Engine.at eng t (fun () ->
            let dst = hosts.((i + 1 + (j mod (n - 1))) mod n) in
            let frame =
              Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
                ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:(4000 + i)
                ~dst_port:9 ~tpp:(Prog.copy tpp) ~payload ()
            in
            Net.host_send net src frame)
      done
  done

(* --- switch register fingerprints ----------------------------------- *)

module SS = Switch_state

let sram_hash (st : SS.t) =
  Array.fold_left (fun acc w -> (acc * 1_000_003) + w) 0 st.SS.sram

let port_fp (p : SS.Port.t) =
  [
    p.SS.Port.rx_bytes; p.rx_pkts; p.tx_bytes; p.tx_pkts; p.drops;
    p.offered_bytes; p.queue_bytes;
  ]

let switch_fp id sw =
  let st = Switch.state sw in
  ( id,
    [
      st.SS.packets_seen; st.SS.bytes_seen; st.SS.drops; st.SS.tpp_execs;
      st.SS.tpp_faults; st.SS.tpp_cycles; sram_hash st;
    ]
    @ List.concat_map port_fp (Array.to_list st.SS.ports) )

let net_fp ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.map (fun (id, sw) -> switch_fp id sw)

let total_drops ~owns net =
  Net.switches net
  |> List.filter (fun (id, _) -> owns id)
  |> List.fold_left (fun a (_, sw) -> a + (Switch.state sw).SS.drops) 0

(* Sequential reference: same builder and traffic, one engine. *)
let run_sequential ~build ~traffic ~until =
  let eng = Engine.create () in
  let net = build eng in
  traffic ~owns:(fun _ -> true) net;
  Engine.run eng ~until;
  ( Engine.events_processed eng,
    Net.frames_delivered net,
    total_drops ~owns:(fun _ -> true) net,
    net_fp ~owns:(fun _ -> true) net )

let run_sharded ~shards ~build ~traffic ~until =
  let stats, fps =
    Parsim.run ~shards ~until ~build
      ~setup:(fun ~shard:_ ~owns net -> traffic ~owns net)
      ~collect:(fun ~shard:_ ~owns net ->
        (total_drops ~owns net, net_fp ~owns net))
      ()
  in
  let drops = Array.fold_left (fun a (d, _) -> a + d) 0 fps in
  let fp =
    Array.to_list fps
    |> List.concat_map snd
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (stats, drops, fp)

let fp_t = Alcotest.(list (pair int (list int)))

let check_matches_sequential ~build ~traffic ~until shard_counts =
  let seq_events, seq_delivered, seq_drops, seq_fp =
    run_sequential ~build ~traffic ~until
  in
  List.iter
    (fun shards ->
      let stats, drops, fp = run_sharded ~shards ~build ~traffic ~until in
      let lbl s = Printf.sprintf "%s (%d shards)" s shards in
      check Alcotest.int (lbl "events") seq_events stats.Parsim.events;
      check Alcotest.int (lbl "delivered") seq_delivered stats.Parsim.delivered;
      check Alcotest.int (lbl "drops") seq_drops drops;
      check fp_t (lbl "switch registers") seq_fp fp)
    shard_counts;
  (seq_delivered, seq_drops)

(* --- partitioning --------------------------------------------------- *)

let test_plan_fat_tree () =
  let eng = Engine.create () in
  let ft =
    Topology.fat_tree eng ~k:4 ~bps:1_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  let net = ft.Topology.f_net in
  let plan = Parsim.Plan.make net ~shards:4 in
  check Alcotest.int "lookahead = min link delay" (Time_ns.us 1)
    plan.Parsim.Plan.lookahead;
  check Alcotest.bool "boundary links exist" true (plan.Parsim.Plan.cut_links > 0);
  Array.iter
    (fun w -> check Alcotest.bool "every shard loaded" true (w > 0))
    plan.Parsim.Plan.shard_weight;
  (* Hosts are pinned with their edge (ToR) switch. *)
  List.iter
    (fun h ->
      let id = h.Net.node_id in
      match Net.neighbors net id with
      | (_, tor, _) :: _ ->
        check Alcotest.int "host rides its ToR's shard"
          plan.Parsim.Plan.owner.(tor) plan.Parsim.Plan.owner.(id)
      | [] -> Alcotest.fail "unattached host")
    (Net.hosts net)

let test_sharding_hooks () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let sw = Net.add_switch net (Switch.create ~id:1 ~num_ports:2 ()) in
  let a = Net.add_host net ~name:"a" in
  let b = Net.add_host net ~name:"b" in
  Net.connect net (a.Net.node_id, 0) (sw, 0) ~bps:1_000_000 ~delay:5;
  Net.connect net (b.Net.node_id, 0) (sw, 1) ~bps:1_000_000 ~delay:7;
  check Alcotest.int "link delay" 7 (Net.link_delay net (b.Net.node_id, 0));
  check Alcotest.bool "unsharded owns all" true (Net.owns net sw);
  let owner = [| 0; 0; 1 |] in  (* b lives on another shard *)
  Net.set_sharding net ~owner ~shard:0
    ~emit:(fun ~arrival:_ ~emitted:_ ~dst:_ _ -> ());
  check Alcotest.bool "owns local" true (Net.owns net a.Net.node_id);
  check Alcotest.bool "foreign node" false (Net.owns net b.Net.node_id);
  let frame =
    Frame.udp_frame ~src_mac:b.Net.mac ~dst_mac:a.Net.mac ~src_ip:b.Net.ip
      ~dst_ip:a.Net.ip ~src_port:1 ~dst_port:2 ~payload:(Bytes.create 8) ()
  in
  Alcotest.check_raises "foreign host_send rejected"
    (Invalid_argument "Net.host_send: host is owned by another shard")
    (fun () -> Net.host_send net b frame)

(* --- sequential equivalence ----------------------------------------- *)

(* Congested dumbbell: a 20x overcommitted core link, so the left switch
   tail-drops — drop accounting must survive sharding exactly. *)
let test_dumbbell_matches_sequential () =
  let build eng =
    let d =
      Topology.dumbbell eng ~pairs:5 ~core_bps:100_000_000
        ~edge_bps:1_000_000_000 ~delay:(Time_ns.us 2) ()
    in
    (* Shallow buffers: the overcommitted core port must tail-drop. *)
    List.iter
      (fun (_, sw) ->
        for p = 0 to Switch.num_ports sw - 1 do
          Switch.set_queue_limit sw ~port:p ~bytes:8_000
        done)
      (Net.switches d.Topology.d_net);
    d.Topology.d_net
  in
  let traffic = blast ~packets:60 ~gap_ns:2_000 ~payload_bytes:600 in
  let _, drops =
    check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 20) [ 1; 2; 4 ]
  in
  check Alcotest.bool "congestion actually dropped frames" true (drops > 0)

let test_fat_tree_matches_sequential () =
  let build eng =
    let ft =
      Topology.fat_tree eng ~ecmp:true ~k:4 ~bps:1_000_000_000
        ~delay:(Time_ns.us 1) ()
    in
    ft.Topology.f_net
  in
  let traffic = blast ~packets:20 ~gap_ns:4_000 ~payload_bytes:400 in
  let delivered, _ =
    check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 10) [ 2; 4 ]
  in
  check Alcotest.bool "traffic flowed" true (delivered > 0)

(* More shards than switches: the extra shards idle at the barriers but
   the run must still complete and agree with the sequential engine. *)
let test_more_shards_than_switches () =
  let build eng =
    let d =
      Topology.dumbbell eng ~pairs:2 ~core_bps:1_000_000_000
        ~edge_bps:1_000_000_000 ~delay:(Time_ns.us 3) ()
    in
    d.Topology.d_net
  in
  let traffic = blast ~packets:8 ~gap_ns:5_000 ~payload_bytes:200 in
  ignore
    (check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 5) [ 5 ])

let prop_random_topology_deterministic =
  QCheck.Test.make ~name:"random fabric: 1/2/4 shards match sequential engine"
    ~count:5
    QCheck.(
      quad (int_range 2 5) (int_range 4 9) (int_range 0 3) (int_range 0 10_000))
    (fun (switches, hosts, extra_links, seed) ->
      let build eng =
        let r =
          Topology.random eng ~switches ~hosts ~extra_links ~seed ~ecmp:true
            ~bps:200_000_000 ~delay:(Time_ns.us 2) ()
        in
        (* Tight queues so random runs exercise tail-drop paths too. *)
        List.iter
          (fun (_, sw) ->
            for p = 0 to Switch.num_ports sw - 1 do
              Switch.set_queue_limit sw ~port:p ~bytes:4_000
            done)
          (Net.switches r.Topology.r_net);
        r.Topology.r_net
      in
      let payload_bytes = 200 + (100 * (seed mod 4)) in
      let traffic = blast ~packets:12 ~gap_ns:3_000 ~payload_bytes in
      ignore
        (check_matches_sequential ~build ~traffic ~until:(Time_ns.ms 10)
           [ 1; 2; 4 ]);
      true)

let suite =
  [
    Alcotest.test_case "plan: fat-tree partition" `Quick test_plan_fat_tree;
    Alcotest.test_case "net sharding hooks" `Quick test_sharding_hooks;
    Alcotest.test_case "dumbbell w/ drops matches sequential" `Quick
      test_dumbbell_matches_sequential;
    Alcotest.test_case "fat-tree matches sequential" `Quick
      test_fat_tree_matches_sequential;
    Alcotest.test_case "more shards than switches" `Quick
      test_more_shards_than_switches;
    qtest prop_random_topology_deterministic;
  ]
