(* Tests for the dataplane realism extensions: TTL handling, ECN
   marking, the DCTCP controller, and pcap capture. *)

open Tpp
module State = Tpp_asic.State

let check = Alcotest.check
let mbps x = x * 1_000_000

let dst_ip = Ipv4.Addr.of_host_id 2

let frame_with_ttl ttl =
  Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
    ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip ~src_port:5 ~dst_port:6 ~ttl
    ~payload:(Bytes.create 64) ()

let routed_switch () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  Switch.install_route sw (Ipv4.Prefix.host dst_ip) ~port:2 ~entry_id:1 ~version:1;
  sw

(* --- TTL ---------------------------------------------------------------- *)

let test_ttl_decremented_on_routing () =
  let sw = routed_switch () in
  let frame = frame_with_ttl 64 in
  (match Switch.handle_ingress sw ~now:0 ~in_port:0 frame with
  | Switch.Queued _ -> ()
  | Switch.Dropped r -> Alcotest.failf "dropped: %s" r);
  check Alcotest.int "decremented" 63 (Frame.ip_ttl frame)

let test_ttl_expiry_drops () =
  let sw = routed_switch () in
  (match Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_ttl 1) with
  | Switch.Dropped "TTL expired" -> ()
  | _ -> Alcotest.fail "ttl 1 should expire");
  check Alcotest.int "counted" 1 (Switch.state sw).State.drops;
  check Alcotest.int "not queued" 0 (Switch.queue_packets sw ~port:2)

let test_ttl_not_touched_by_l2 () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  Switch.install_l2 sw (Mac.of_host_id 2) ~port:1 ~entry_id:1 ~version:1;
  let frame = frame_with_ttl 7 in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  check Alcotest.int "L2 hop keeps TTL" 7 (Frame.ip_ttl frame)

let test_forwarding_loop_terminates () =
  (* Two switches routing the prefix at each other: the packet must die
     of TTL expiry rather than bounce forever. *)
  let eng = Engine.create () in
  let net = Net.create eng in
  let a = Net.add_switch net (Switch.create ~id:1 ~num_ports:2 ()) in
  let b = Net.add_switch net (Switch.create ~id:2 ~num_ports:2 ()) in
  let h = Net.add_host net ~name:"h" in
  Net.connect net (h.Net.node_id, 0) (a, 1) ~bps:(mbps 100) ~delay:0;
  Net.connect net (a, 0) (b, 0) ~bps:(mbps 100) ~delay:(Time_ns.us 10);
  let victim = Ipv4.Prefix.host (Ipv4.Addr.of_string "10.9.9.9") in
  Switch.install_route (Net.switch net a) victim ~port:0 ~entry_id:1 ~version:1;
  Switch.install_route (Net.switch net b) victim ~port:0 ~entry_id:1 ~version:1;
  let frame =
    Frame.udp_frame ~src_mac:h.Net.mac ~dst_mac:(Mac.of_host_id 99) ~src_ip:h.Net.ip
      ~dst_ip:(Ipv4.Addr.of_string "10.9.9.9") ~src_port:1 ~dst_port:2 ~ttl:32
      ~payload:Bytes.empty ()
  in
  Net.host_send net h frame;
  Engine.run eng ~until:(Time_ns.sec 1);
  let drops = (Switch.state (Net.switch net a)).State.drops
              + (Switch.state (Net.switch net b)).State.drops in
  check Alcotest.int "loop broken by TTL" 1 drops

(* --- ECN ------------------------------------------------------------------ *)

let test_ecn_marks_above_threshold () =
  let sw = routed_switch () in
  Switch.set_ecn_threshold sw ~port:2 (Some 150);
  let first = frame_with_ttl 64 in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 first);
  check Alcotest.int "below threshold: unmarked" 0
    (Frame.ip_ecn first);
  (* The first frame (>= 150 wire bytes? it is 110) -- add more until
     occupancy crosses. *)
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_ttl 64));
  let marked = frame_with_ttl 64 in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 marked);
  check Alcotest.int "above threshold: CE" Ipv4.Header.ecn_ce
    (Frame.ip_ecn marked)

let test_ecn_disabled_by_default () =
  let sw = routed_switch () in
  for _ = 1 to 20 do
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_ttl 64))
  done;
  let last = frame_with_ttl 64 in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 last);
  check Alcotest.int "never marked" 0 (Frame.ip_ecn last)

let test_ecn_survives_serialization () =
  let frame = frame_with_ttl 64 in
  Frame.set_ip_ecn frame Ipv4.Header.ecn_ce;
  match Frame.parse (Frame.serialize frame) with
  | Ok got -> check Alcotest.int "CE on the wire" 3 (Frame.ip_ecn got)
  | Error e -> Alcotest.fail e

(* --- DCTCP ------------------------------------------------------------------ *)

let test_dctcp_reacts_to_marks () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:1 ~core_bps:(mbps 5) ~edge_bps:(mbps 100)
      ~delay:(Time_ns.ms 2) ()
  in
  let net = bell.Topology.d_net in
  Switch.set_ecn_threshold (Net.switch net bell.Topology.left_switch) ~port:0
    (Some 15_000);
  let sa = Stack.create net bell.Topology.senders.(0) in
  let sb = Stack.create net bell.Topology.receivers.(0) in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.cbr ~src:sa ~dst:bell.Topology.receivers.(0) ~dst_port:9000
      ~payload_bytes:954 ~rate_bps:(mbps 1)
  in
  let config = Dctcp.default_config ~max_rate_bps:(mbps 50) in
  let ctl = Dctcp.create sa config ~flow ~report_port:9100 in
  let _rx =
    Dctcp.Receiver.attach sb ~sink ~report_to:bell.Topology.senders.(0)
      ~report_port:9100 ~period:config.Dctcp.report_period_ns
  in
  Dctcp.start ctl;
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 10);
  check Alcotest.bool "marks observed" true (Dctcp.marked_seen ctl > 0);
  check Alcotest.bool "alpha moved" true (Dctcp.alpha ctl > 0.0);
  (* The controller must settle near the 5 Mb/s capacity, not the 50 max. *)
  let rate = Dctcp.current_rate_bps ctl in
  check Alcotest.bool
    (Printf.sprintf "rate %.1f Mb/s tracks capacity" (float_of_int rate /. 1e6))
    true
    (rate > mbps 2 && rate < mbps 10);
  (* And the queue should hover near the threshold, not the 150 kB limit. *)
  let q =
    Switch.queue_bytes (Net.switch net bell.Topology.left_switch) ~port:0
  in
  check Alcotest.bool "queue bounded by marking" true (q < 60_000)

(* --- multi-queue ports and priority scheduling ------------------------------- *)

let frame_with_dscp dscp =
  let frame = frame_with_ttl 64 in
  Frame.set_ip_dscp frame dscp;
  frame

let test_default_single_queue_unchanged () =
  let sw = routed_switch () in
  check Alcotest.int "one queue" 1 (Switch.num_queues sw ~port:2);
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 46));
  check Alcotest.int "queued in queue 0" 1 (Switch.queue_packets sw ~port:2)

let test_classifier_spreads_by_dscp () =
  let sw = routed_switch () in
  Switch.configure_queues sw ~port:2 ~count:4;
  check Alcotest.int "four queues" 4 (Switch.num_queues sw ~port:2);
  let q_of frame =
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
    frame.Frame.meta.Tpp_isa.Meta.queue_id
  in
  check Alcotest.int "best effort -> q0" 0 (q_of (frame_with_dscp 0));
  check Alcotest.int "mid -> q1" 1 (q_of (frame_with_dscp 24));
  check Alcotest.int "EF -> q2" 2 (q_of (frame_with_dscp 46));
  check Alcotest.int "network control -> q3" 3 (q_of (frame_with_dscp 56))

let test_strict_priority_scheduling () =
  let sw = routed_switch () in
  Switch.configure_queues sw ~port:2 ~count:2;
  (* Enqueue three bulk frames, then one EF frame: the EF frame must be
     transmitted first despite arriving last. *)
  for _ = 1 to 3 do
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 0))
  done;
  let ef = frame_with_dscp 46 in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 ef);
  (match Switch.dequeue sw ~port:2 with
  | Some first -> check Alcotest.int "EF jumps the line" ef.Frame.id first.Frame.id
  | None -> Alcotest.fail "queue empty");
  (* The remaining three drain in FIFO order from the bulk queue. *)
  check Alcotest.int "three left" 3 (Switch.queue_packets sw ~port:2);
  ignore (Switch.dequeue sw ~port:2);
  ignore (Switch.dequeue sw ~port:2);
  ignore (Switch.dequeue sw ~port:2);
  check Alcotest.int "drained" 0 (Switch.queue_packets sw ~port:2)

let test_wrr_scheduling_ratio () =
  let sw = routed_switch () in
  Switch.configure_queues sw ~port:2 ~count:2;
  Switch.set_scheduler sw ~port:2 (Switch.Wrr [| 1; 3 |]);
  (* Backlog both queues with 12 frames each. *)
  for _ = 1 to 12 do
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 0));
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 46))
  done;
  (* Drain 16 packets: the 3:1 weights give 12 EF : 4 bulk. *)
  let ef = ref 0 and bulk = ref 0 in
  for _ = 1 to 16 do
    match Switch.dequeue sw ~port:2 with
    | Some f ->
      if Frame.ip_dscp f = 46 then incr ef else incr bulk
    | None -> Alcotest.fail "queue ran dry"
  done;
  check Alcotest.int "weighted share for EF" 12 !ef;
  check Alcotest.int "weighted share for bulk" 4 !bulk;
  (* Once EF empties, bulk gets everything. *)
  let rec drain n =
    match Switch.dequeue sw ~port:2 with Some _ -> drain (n + 1) | None -> n
  in
  check Alcotest.int "remainder drains" 8 (drain 0)

let test_wrr_validation () =
  let sw = routed_switch () in
  Alcotest.check_raises "needs a positive weight"
    (Invalid_argument "Switch.set_scheduler: WRR needs a positive weight") (fun () ->
      Switch.set_scheduler sw ~port:2 (Switch.Wrr [| 0; 0 |]))

let test_per_queue_stats_and_isolation () =
  let sw = routed_switch () in
  Switch.configure_queues sw ~port:2 ~count:2;
  Switch.set_queue_limit sw ~port:2 ~bytes:200;
  let wire = Frame.wire_size (frame_with_dscp 0) in
  (* Fill the bulk queue to its limit; EF queue must stay open. *)
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 0));
  (match Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 0) with
  | Switch.Dropped "queue full" -> ()
  | _ -> Alcotest.fail "bulk queue should be full");
  (match Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 46) with
  | Switch.Queued _ -> ()
  | Switch.Dropped r -> Alcotest.failf "EF queue should be open: %s" r);
  let st = Switch.state sw in
  let q queue stat = Option.get (Tpp_asic.State.queue_stat st ~port:2 ~queue stat) in
  check Alcotest.int "q0 occupancy" wire (q 0 Vaddr.Queue_stat.Q_bytes);
  check Alcotest.int "q0 dropped bytes" wire (q 0 Vaddr.Queue_stat.Q_dropped);
  check Alcotest.int "q0 enqueued bytes" wire (q 0 Vaddr.Queue_stat.Q_enqueued);
  check Alcotest.int "q1 occupancy" wire (q 1 Vaddr.Queue_stat.Q_bytes);
  check Alcotest.int "q1 clean" 0 (q 1 Vaddr.Queue_stat.Q_dropped);
  check Alcotest.int "port aggregate" (2 * wire)
    (Tpp_asic.State.port_stat st ~port:2 Vaddr.Port_stat.Queue_bytes)

let test_tpp_reads_its_own_queue () =
  let sw = routed_switch () in
  Switch.configure_queues sw ~port:2 ~count:2;
  (* Backlog in the bulk queue only. *)
  for _ = 1 to 3 do
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (frame_with_dscp 0))
  done;
  let probe dscp =
    let tpp =
      Result.get_ok (Asm.to_tpp ~mem_len:16 "PUSH [Queue:QueueSize]\nPUSH [Queue:QueueID]\n")
    in
    let frame = frame_with_dscp dscp in
    let frame = Frame.with_tpp frame (Some tpp) in
    ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
    Prog.stack_values (Option.get frame.Frame.tpp)
  in
  (match probe 0 with
  | [ q_bytes; qid ] ->
    check Alcotest.int "bulk probe in q0" 0 qid;
    check Alcotest.bool "sees the backlog" true (q_bytes > 100)
  | _ -> Alcotest.fail "bulk probe");
  match probe 46 with
  | [ q_bytes; qid ] ->
    check Alcotest.int "EF probe in q1" 1 qid;
    (* Only the previous EF probe could be ahead of it. *)
    check Alcotest.bool "EF queue nearly empty" true (q_bytes < 100)
  | _ -> Alcotest.fail "EF probe"

let test_priority_latency_end_to_end () =
  (* Under heavy bulk load, EF traffic keeps low latency through a
     2-queue switch while bulk queues up. *)
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:3 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  List.iter
    (fun (_, sw) ->
      for p = 0 to Switch.num_ports sw - 1 do
        Switch.configure_queues sw ~port:p ~count:2
      done)
    (Net.switches net);
  (* Two bulk flows oversubscribe the spine. *)
  List.iter
    (fun j ->
      let src = Stack.create net (host 0 j) in
      let dst = Stack.create net (host 1 j) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let f =
        Flow.cbr ~src ~dst:(host 1 j) ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:(mbps 60)
      in
      Flow.start f ())
    [ 1; 2 ];
  (* An EF probe flow measures latency. DSCP rides in the IP header the
     stack builds, so mark via a custom classifier keyed on UDP port. *)
  List.iter
    (fun (_, sw) ->
      Switch.set_queue_classifier sw (fun frame ->
          if Frame.has_udp frame && Frame.udp_dst_port frame = 9001 then 46
          else 0))
    (Net.switches net);
  let ef_src = Stack.create net (host 0 0) in
  let ef_dst = Stack.create net (host 1 0) in
  let ef_sink = Flow.Sink.attach ef_dst ~port:9001 in
  let ef =
    Flow.cbr ~src:ef_src ~dst:(host 1 0) ~dst_port:9001 ~payload_bytes:200
      ~rate_bps:(mbps 1)
  in
  Flow.start ef ();
  Engine.run eng ~until:(Time_ns.sec 2);
  let p95_ms =
    Tpp_util.Stats.percentile (Flow.Sink.latency ef_sink) 95.0 /. 1e6
  in
  check Alcotest.bool
    (Printf.sprintf "EF p95 latency %.2f ms stays low under bulk overload" p95_ms)
    true (p95_ms < 2.0)

(* --- link failures and localisation ------------------------------------------ *)

let test_link_down_blackholes () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let a = chain.Topology.hosts.(0).(0) and b = chain.Topology.hosts.(1).(0) in
  let got = ref 0 in
  b.Net.receive <- (fun ~now:_ _ -> incr got);
  let send () =
    Net.host_send net a
      (Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
         ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ())
  in
  send ();
  Engine.run eng ~until:(Time_ns.ms 10);
  check Alcotest.int "delivered while up" 1 !got;
  let spine = (chain.Topology.switch_ids.(0), 1) in
  check Alcotest.bool "was up" true (Net.link_up net spine);
  Net.set_link_up net spine false;
  send ();
  Engine.run eng ~until:(Time_ns.ms 20);
  check Alcotest.int "blackholed while down" 1 !got;
  Net.set_link_up net spine true;
  send ();
  Engine.run eng ~until:(Time_ns.ms 30);
  check Alcotest.int "flows again after restore" 2 !got

let test_faultfind_localises_chain_link () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let h i j = chain.Topology.hosts.(i).(j) in
  let stacks = Array.init 3 (fun i -> Array.init 2 (fun j -> Stack.create net (h i j))) in
  Array.iter (Array.iter Probe.install_echo) stacks;
  (* Circuit 1 crosses both spine links and will fail; circuit 2 covers
     only the first spine; circuit 3 stays inside the last switch and
     exonerates the destination's access link. *)
  let finder =
    Faultfind.create
      ~circuits:
        [ (stacks.(0).(0), h 2 0); (stacks.(0).(0), h 1 0); (stacks.(2).(1), h 2 0) ]
      ~period:(Time_ns.ms 5) ~timeout:(Time_ns.ms 25) ()
  in
  Faultfind.start finder ();
  Engine.run eng ~until:(Time_ns.ms 200);
  check (Alcotest.list Alcotest.bool) "all healthy before" [ true; true; true ]
    (Faultfind.healthy finder ~now:(Engine.now eng));
  check (Alcotest.list Alcotest.bool) "no suspects before" []
    (List.map (fun _ -> true) (Faultfind.suspects finder ~now:(Engine.now eng)));
  (* Kill the second spine link (sw2 -> sw3). *)
  Net.set_link_up net (chain.Topology.switch_ids.(1), 1) false;
  Engine.run eng ~until:(Time_ns.ms 400);
  let now = Engine.now eng in
  check (Alcotest.list Alcotest.bool) "only the crossing circuit fails"
    [ false; true; true ]
    (Faultfind.healthy finder ~now);
  match Faultfind.suspects finder ~now with
  | [ suspect ] ->
    check Alcotest.bool "the dead cable" true
      (Faultfind.same_cable finder suspect
         { Faultfind.from_switch = 2; egress_port = 1 })
  | other -> Alcotest.failf "expected one suspect, got %d" (List.length other)

(* --- pcap -------------------------------------------------------------------- *)

let test_pcap_roundtrip () =
  let cap = Pcap.create () in
  let f1 = frame_with_ttl 64 in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 "PUSH [Switch:SwitchID]\n") in
  let f2 =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 3) ~dst_mac:(Mac.of_host_id 4)
      ~src_ip:(Ipv4.Addr.of_host_id 3) ~dst_ip:(Ipv4.Addr.of_host_id 4) ~src_port:7
      ~dst_port:8 ~tpp ~payload:(Bytes.create 10) ()
  in
  Pcap.record cap ~now:1_500_000 f1;
  Pcap.record cap ~now:2_000_001_000 f2;
  check Alcotest.int "two records" 2 (Pcap.length cap);
  let image = Pcap.to_bytes cap in
  match Pcap.parse image with
  | Error e -> Alcotest.fail e
  | Ok records ->
    check Alcotest.int "parsed both" 2 (List.length records);
    (match records with
    | [ a; b ] ->
      check Alcotest.int "ts 1 (us resolution)" 1_500_000 a.Pcap.ts_ns;
      check Alcotest.int "ts 2" 2_000_001_000 b.Pcap.ts_ns;
      check Alcotest.bool "payload bytes equal" true
        (Bytes.equal a.Pcap.data (Frame.serialize f1));
      (* The captured bytes re-parse as the original frame. *)
      (match Frame.parse b.Pcap.data with
      | Ok got -> check Alcotest.bool "tpp frame survives" true (Option.is_some got.Frame.tpp)
      | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "wrong record count")

(* The streaming writer must emit the exact bytes of the in-memory
   image, through to_channel and through write_file. *)
let test_pcap_streaming_matches_to_bytes () =
  let cap = Pcap.create ~snaplen:96 () in
  for i = 1 to 20 do
    Pcap.record cap
      ~now:(i * 1_000_000)
      (Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
         ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
         ~src_port:1 ~dst_port:2
         ~payload:(Bytes.make (40 + (i mod 5)) 'x')
         ())
  done;
  let image = Pcap.to_bytes cap in
  let path = Filename.temp_file "tpp_pcap" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.write_file cap path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let streamed = Bytes.create len in
      really_input ic streamed 0 len;
      close_in ic;
      check Alcotest.bool "write_file emits to_bytes image" true
        (Bytes.equal image streamed));
  match Pcap.parse image with
  | Ok records -> check Alcotest.int "all records parse back" 20 (List.length records)
  | Error e -> Alcotest.fail e

let test_pcap_rejects_garbage () =
  check Alcotest.bool "short" true (Result.is_error (Pcap.parse (Bytes.create 4)));
  let bad = Pcap.to_bytes (Pcap.create ()) in
  Bytes.set_uint8 bad 0 0xFF;
  check Alcotest.bool "magic" true (Result.is_error (Pcap.parse bad))

let test_pcap_snaplen () =
  let cap = Pcap.create ~snaplen:20 () in
  Pcap.record cap ~now:0 (frame_with_ttl 64);
  match Pcap.records cap with
  | [ r ] -> check Alcotest.int "truncated" 20 (Bytes.length r.Pcap.data)
  | _ -> Alcotest.fail "one record"

let test_pcap_tap_host () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:1 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let a = chain.Topology.hosts.(0).(0) and b = chain.Topology.hosts.(0).(1) in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let hits = ref 0 in
  Stack.on_udp sb ~port:9000 (fun ~now:_ _ -> incr hits);
  let cap = Pcap.create () in
  Pcap.tap_host cap net b;
  for _ = 1 to 5 do
    Stack.send_udp sa ~dst:b ~src_port:9000 ~dst_port:9000 ~payload:Bytes.empty ()
  done;
  Engine.run eng ~until:(Time_ns.ms 10);
  check Alcotest.int "captured all" 5 (Pcap.length cap);
  check Alcotest.int "app still sees traffic" 5 !hits

let suite =
  [
    Alcotest.test_case "ttl decrement" `Quick test_ttl_decremented_on_routing;
    Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry_drops;
    Alcotest.test_case "ttl untouched by l2" `Quick test_ttl_not_touched_by_l2;
    Alcotest.test_case "loop killed by ttl" `Quick test_forwarding_loop_terminates;
    Alcotest.test_case "ecn marks above threshold" `Quick test_ecn_marks_above_threshold;
    Alcotest.test_case "ecn off by default" `Quick test_ecn_disabled_by_default;
    Alcotest.test_case "ecn on the wire" `Quick test_ecn_survives_serialization;
    Alcotest.test_case "dctcp reacts to marks" `Slow test_dctcp_reacts_to_marks;
    Alcotest.test_case "default single queue" `Quick test_default_single_queue_unchanged;
    Alcotest.test_case "dscp classifier" `Quick test_classifier_spreads_by_dscp;
    Alcotest.test_case "strict priority scheduling" `Quick test_strict_priority_scheduling;
    Alcotest.test_case "wrr scheduling ratio" `Quick test_wrr_scheduling_ratio;
    Alcotest.test_case "wrr validation" `Quick test_wrr_validation;
    Alcotest.test_case "per-queue stats and isolation" `Quick
      test_per_queue_stats_and_isolation;
    Alcotest.test_case "tpp reads its own queue" `Quick test_tpp_reads_its_own_queue;
    Alcotest.test_case "EF latency under load" `Quick test_priority_latency_end_to_end;
    Alcotest.test_case "link down blackholes" `Quick test_link_down_blackholes;
    Alcotest.test_case "faultfind localises" `Quick test_faultfind_localises_chain_link;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap streaming writer" `Quick
      test_pcap_streaming_matches_to_bytes;
    Alcotest.test_case "pcap rejects garbage" `Quick test_pcap_rejects_garbage;
    Alcotest.test_case "pcap snaplen" `Quick test_pcap_snaplen;
    Alcotest.test_case "pcap tap" `Quick test_pcap_tap_host;
  ]
