(* End-host stack tests: token bucket, UDP dispatch, probe echo,
   traffic generators, the micro-burst episode counter, and the RCP*
   control law. *)

open Tpp
module Rs = Rcp_star

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Token bucket ------------------------------------------------------- *)

let test_token_bucket_burst () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  check Alcotest.bool "full bucket grants burst" true (Token_bucket.take tb ~now:0 ~bytes:1000);
  check Alcotest.bool "empty rejects" false (Token_bucket.take tb ~now:0 ~bytes:1)

let test_token_bucket_accrual () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  ignore (Token_bucket.take tb ~now:0 ~bytes:1000);
  (* 8 kb/s = 1000 B/s: after 100 ms exactly 100 bytes accrued. *)
  check Alcotest.bool "not yet" false (Token_bucket.take tb ~now:(Time_ns.ms 99) ~bytes:100);
  check Alcotest.bool "after 100ms" true (Token_bucket.take tb ~now:(Time_ns.ms 100) ~bytes:100)

let test_token_bucket_cap () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  ignore (Token_bucket.take tb ~now:0 ~bytes:1000);
  (* An hour later the bucket holds only its burst size. *)
  check Alcotest.bool "capped" true (Token_bucket.take tb ~now:(Time_ns.sec 3600) ~bytes:1000);
  check Alcotest.bool "no more" false (Token_bucket.take tb ~now:(Time_ns.sec 3600) ~bytes:1)

let test_token_bucket_delay () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  ignore (Token_bucket.take tb ~now:0 ~bytes:1000);
  check Alcotest.int "delay for 100B" (Time_ns.ms 100)
    (Token_bucket.delay_until_ready tb ~now:0 ~bytes:100);
  check Alcotest.int "ready is zero" 0
    (Token_bucket.delay_until_ready tb ~now:(Time_ns.sec 10) ~bytes:100)

let test_token_bucket_set_rate () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  ignore (Token_bucket.take tb ~now:0 ~bytes:1000);
  Token_bucket.set_rate tb ~now:0 ~rate_bps:16_000;
  check Alcotest.int "rate updated" 16_000 (Token_bucket.rate_bps tb);
  check Alcotest.bool "doubled accrual" true
    (Token_bucket.take tb ~now:(Time_ns.ms 100) ~bytes:200)

let test_token_bucket_oversize () =
  let tb = Token_bucket.create ~rate_bps:8_000 ~burst_bytes:1000 ~now:0 in
  (* Tokens are capped at [burst_bytes], so a larger request can never
     be granted: a finite delay here would make a pacing loop spin
     forever. The bucket must reject it loudly instead. *)
  Alcotest.check_raises "oversize request rejected"
    (Invalid_argument
       "Token_bucket.delay_until_ready: bytes exceeds burst capacity")
    (fun () -> ignore (Token_bucket.delay_until_ready tb ~now:0 ~bytes:1001))

(* The quoted delay must actually work: sleeping exactly that long and
   retrying [take] succeeds, even where the closed-form [ceil] lands one
   ulp short of the float arithmetic [accrue] performs. Awkward rates
   (odd, large) probe exactly those rounding edges. *)
let prop_token_bucket_delay_is_sufficient =
  QCheck.Test.make ~name:"token bucket quoted delay always suffices" ~count:200
    QCheck.(
      make
        Gen.(
          triple (int_range 1 1_000_000_000) (int_range 1 100_000)
            (int_range 0 1_000_000_000)))
    (fun (rate_bps, burst, now) ->
      let tb = Token_bucket.create ~rate_bps ~burst_bytes:burst ~now:0 in
      ignore (Token_bucket.take tb ~now:0 ~bytes:burst);
      let bytes = max 1 (burst / 2) in
      let d = Token_bucket.delay_until_ready tb ~now ~bytes in
      Token_bucket.take tb ~now:(now + d) ~bytes)

let prop_token_bucket_never_exceeds_rate =
  QCheck.Test.make ~name:"token bucket long-run conformance" ~count:50
    QCheck.(make Gen.(pair (int_range 1000 1_000_000) (int_range 100 10_000)))
    (fun (rate_bps, pkt) ->
      let tb = Token_bucket.create ~rate_bps ~burst_bytes:(2 * pkt) ~now:0 in
      let horizon = Time_ns.sec 2 in
      let sent = ref 0 in
      let rec go now =
        if now < horizon then begin
          if Token_bucket.take tb ~now ~bytes:pkt then sent := !sent + pkt;
          go (now + Time_ns.us 500)
        end
      in
      go 0;
      (* Never more than rate * time + burst. *)
      !sent * 8 <= (rate_bps * 2) + (2 * pkt * 8))

(* --- A tiny two-host network for app-level tests ------------------------ *)

let two_hosts () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:1 ~bps:100_000_000
      ~delay:(Time_ns.us 100) ()
  in
  let net = chain.Topology.net in
  let a = chain.Topology.hosts.(0).(0) in
  let b = chain.Topology.hosts.(1).(0) in
  (eng, net, a, b)

let test_stack_dispatch () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let hits = ref [] in
  Stack.on_udp sb ~port:100 (fun ~now:_ _ -> hits := 100 :: !hits);
  Stack.on_udp sb ~port:200 (fun ~now:_ _ -> hits := 200 :: !hits);
  Stack.on_default sb (fun ~now:_ _ -> hits := -1 :: !hits);
  Stack.send_udp sa ~dst:b ~src_port:1 ~dst_port:200 ~payload:Bytes.empty ();
  Stack.send_udp sa ~dst:b ~src_port:1 ~dst_port:100 ~payload:Bytes.empty ();
  Stack.send_udp sa ~dst:b ~src_port:1 ~dst_port:999 ~payload:Bytes.empty ();
  Engine.run eng ~until:(Time_ns.ms 10);
  check (Alcotest.list Alcotest.int) "routes by port" [ 200; 100; -1 ] (List.rev !hits)

let test_probe_echo_roundtrip () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  Probe.install_echo sb;
  let replies = ref [] in
  Probe.install_reply_handler sa (fun ~now:_ ~seq tpp ->
      replies := (seq, tpp.Prog.hop, Prog.stack_values tpp) :: !replies);
  let tpp =
    Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Switch:SwitchID]\n")
  in
  Probe.send sa ~dst:b ~tpp ~seq:7;
  Engine.run eng ~until:(Time_ns.ms 10);
  match !replies with
  | [ (7, 2, [ 1; 2 ]) ] -> ()
  | [ (seq, hops, values) ] ->
    Alcotest.failf "bad echo: seq=%d hops=%d values=[%s]" seq hops
      (String.concat ";" (List.map string_of_int values))
  | other -> Alcotest.failf "expected one reply, got %d" (List.length other)

let test_probe_template_not_mutated () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  Probe.install_echo sb;
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Switch:SwitchID]\n") in
  Probe.send sa ~dst:b ~tpp ~seq:1;
  Probe.send sa ~dst:b ~tpp ~seq:2;
  Engine.run eng ~until:(Time_ns.ms 10);
  check Alcotest.int "template sp untouched" 0 tpp.Prog.sp;
  check Alcotest.int "template hop untouched" 0 tpp.Prog.hop

let test_cbr_flow_rate () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:10_000_000
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 1);
  Flow.stop flow;
  let goodput = float_of_int (Flow.Sink.rx_bytes sink) *. 8.0 in
  check Alcotest.bool "goodput within 2% of 10 Mb/s" true
    (goodput > 9.8e6 && goodput < 10.2e6);
  check Alcotest.int "no reordering" 0 (Flow.Sink.reordered sink);
  check Alcotest.bool "latency measured" true
    (Tpp_util.Stats.mean (Flow.Sink.latency sink) > 0.0)

let test_cbr_set_rate_takes_effect () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:2_000_000
  in
  Flow.start flow ();
  Engine.at eng (Time_ns.ms 500) (fun () -> Flow.set_rate flow ~rate_bps:20_000_000);
  Engine.run eng ~until:(Time_ns.sec 1);
  (* 0.5s at 2 Mb/s + 0.5s at 20 Mb/s = 1.375 MB. *)
  let bytes = Flow.Sink.rx_bytes sink in
  check Alcotest.bool "rate change visible" true
    (bytes > 1_200_000 && bytes < 1_500_000)

let test_burst_flow_shape () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.bursts ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:1000 ~burst_pkts:10
      ~period:(Time_ns.ms 10)
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.ms 35);
  Flow.stop flow;
  (* Bursts at t=0,10,20,30ms: 40 packets sent. *)
  check Alcotest.int "four bursts" 40 (Flow.tx_pkts flow);
  check Alcotest.int "all arrive" 40 (Flow.Sink.rx_pkts sink)

let test_flow_stop_restart () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let _sb = Stack.create net b in
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:8_000_000
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.ms 100);
  Flow.stop flow;
  let sent = Flow.tx_pkts flow in
  Engine.run eng ~until:(Time_ns.ms 200);
  check Alcotest.int "nothing after stop" sent (Flow.tx_pkts flow);
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.ms 300);
  check Alcotest.bool "resumed" true (Flow.tx_pkts flow > sent)

(* --- Episode counter ------------------------------------------------------ *)

let test_episode_counting () =
  let e = Microburst.Episode.create ~threshold:10 in
  List.iter (Microburst.Episode.feed e) [ 0; 5; 12; 15; 9; 3; 11; 2; 10 ];
  check Alcotest.int "three crossings" 3 (Microburst.Episode.count e);
  check Alcotest.int "max" 15 (Microburst.Episode.max_seen e);
  check Alcotest.int "samples" 9 (Microburst.Episode.samples e)

let test_episode_level_holds () =
  let e = Microburst.Episode.create ~threshold:10 in
  List.iter (Microburst.Episode.feed e) [ 12; 13; 14; 15 ];
  check Alcotest.int "one long episode" 1 (Microburst.Episode.count e)

(* --- RCP* pieces ----------------------------------------------------------- *)

let sample ?(rate_kbps = 10_000) ?(util_ppm = 1_000_000) ?(queue = 0) () =
  { Rs.switch_id = 1; queue_bytes = queue; util_ppm; capacity_kbps = 10_000;
    rate_kbps }

let config = Rs.default_config ~slot:0

(* An independent rendering of the paper's equation; the implementation
   must agree with it. *)
let law s =
  let c = float_of_int s.Rs.capacity_kbps *. 1000.0 in
  let r = float_of_int s.Rs.rate_kbps *. 1000.0 in
  let r = if r <= 0.0 then c else r in
  let y = float_of_int s.Rs.util_ppm /. 1e6 *. c in
  let d = float_of_int config.Rs.rtt_ns /. 1e9 in
  let t_over_d = float_of_int config.Rs.period_ns /. float_of_int config.Rs.rtt_ns in
  let q = config.Rs.beta *. (float_of_int s.Rs.queue_bytes *. 8.0) /. d in
  let feedback = ((config.Rs.alpha *. (y -. c)) +. q) /. c in
  Float.max
    (float_of_int config.Rs.min_rate_bps)
    (Float.min c (r *. (1.0 -. (t_over_d *. feedback))))

let test_control_law_fixed_point () =
  (* Fully utilised, empty queue: R should not move. *)
  check (Alcotest.float 1.0) "fixed point" 10_000_000.0
    (Rs.control_law config (sample ()))

let test_control_law_matches_spec () =
  List.iter
    (fun s ->
      check (Alcotest.float 1.0) "implementation = paper equation" (law s)
        (Rs.control_law config s))
    [ sample (); sample ~util_ppm:2_000_000 (); sample ~queue:80_000 ();
      sample ~rate_kbps:3_000 ~util_ppm:300_000 ();
      sample ~rate_kbps:0 ~util_ppm:0 () ]

let test_control_law_directions () =
  let law s = Rs.control_law config s in
  check Alcotest.bool "overload cuts rate" true
    (law (sample ~util_ppm:2_000_000 ()) < 10_000_000.0);
  check Alcotest.bool "queue cuts rate" true (law (sample ~queue:50_000 ()) < 10_000_000.0);
  check Alcotest.bool "headroom raises rate" true
    (law (sample ~rate_kbps:5_000 ~util_ppm:500_000 ()) > 5_000_000.0);
  check Alcotest.bool "never below floor" true
    (law (sample ~util_ppm:10_000_000 ~queue:10_000_000 ())
     >= float_of_int config.Rs.min_rate_bps);
  check Alcotest.bool "never above capacity" true
    (law (sample ~rate_kbps:9_999 ~util_ppm:100_000 ()) <= 10_000_000.0)

let test_collect_source_assembles () =
  let src, defines = Rs.collect_source ~slot:3 in
  match Asm.assemble ~defines src with
  | Ok p -> check Alcotest.int "five pushes" 5 (List.length p.Asm.instrs)
  | Error e -> Alcotest.fail e

let test_setup_network_consistent_slots () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:10_000_000 ~edge_bps:100_000_000
      ~delay:(Time_ns.us 10) ()
  in
  let net = bell.Topology.d_net in
  match Rs.setup_network net with
  | Error e -> Alcotest.fail e
  | Ok slot ->
    check Alcotest.int "first slot" 0 slot;
    (* Registers initialised to capacity on every switch. *)
    let sw = Net.switch net bell.Topology.left_switch in
    check (Alcotest.option Alcotest.int) "core register = capacity" (Some 10_000)
      (Rs.read_rate_kbps sw ~slot ~port:0);
    check (Alcotest.option Alcotest.int) "edge register = capacity" (Some 100_000)
      (Rs.read_rate_kbps sw ~slot ~port:1)

let suite =
  [
    Alcotest.test_case "token bucket burst" `Quick test_token_bucket_burst;
    Alcotest.test_case "token bucket accrual" `Quick test_token_bucket_accrual;
    Alcotest.test_case "token bucket cap" `Quick test_token_bucket_cap;
    Alcotest.test_case "token bucket delay" `Quick test_token_bucket_delay;
    Alcotest.test_case "token bucket set rate" `Quick test_token_bucket_set_rate;
    Alcotest.test_case "token bucket oversize request" `Quick
      test_token_bucket_oversize;
    qtest prop_token_bucket_delay_is_sufficient;
    qtest prop_token_bucket_never_exceeds_rate;
    Alcotest.test_case "stack dispatch" `Quick test_stack_dispatch;
    Alcotest.test_case "probe echo roundtrip" `Quick test_probe_echo_roundtrip;
    Alcotest.test_case "probe template immutable" `Quick test_probe_template_not_mutated;
    Alcotest.test_case "cbr flow rate" `Quick test_cbr_flow_rate;
    Alcotest.test_case "cbr set rate" `Quick test_cbr_set_rate_takes_effect;
    Alcotest.test_case "burst flow shape" `Quick test_burst_flow_shape;
    Alcotest.test_case "flow stop/restart" `Quick test_flow_stop_restart;
    Alcotest.test_case "episode counting" `Quick test_episode_counting;
    Alcotest.test_case "episode level holds" `Quick test_episode_level_holds;
    Alcotest.test_case "control law fixed point" `Quick test_control_law_fixed_point;
    Alcotest.test_case "control law matches paper equation" `Quick
      test_control_law_matches_spec;
    Alcotest.test_case "control law directions" `Quick test_control_law_directions;
    Alcotest.test_case "collect program assembles" `Quick test_collect_source_assembles;
    Alcotest.test_case "setup network slots" `Quick test_setup_network_consistent_slots;
  ]
