(* Telemetry properties: the postcard codec round-trips, sink
   accounting balances under arbitrary emit/drain interleavings, and
   the sketches obey their proven error bounds against exact oracles —
   count-min point queries never underestimate and overestimate by at
   most e/width * total; t-digest quantiles sit within the k1
   cluster-width rank bound of the exact Stats.percentile; merged
   shard sketches match the single-stream sketch (bit-exactly for the
   CMS and the collector fingerprint, rank-close for the digest). *)

open Tpp

let qtest = QCheck_alcotest.to_alcotest

(* ---- wire codec ------------------------------------------------- *)

let wire_roundtrip =
  QCheck.Test.make ~name:"postcard fields round-trip through the card"
    ~count:500
    QCheck.(pair (quad small_nat small_nat small_nat small_nat) int)
    (fun ((a, b, c, d), seed) ->
      let rng = Rng.create ~seed in
      let u32 = 0xFFFF_FFFF in
      let kind = a land 0xFF and in_port = b land 0xFF in
      let out_port = (c * 997) land 0xFFFF in
      let node = Rng.int rng (u32 + 1) in
      let value = Rng.int rng (u32 + 1) in
      let version = Rng.int rng (u32 + 1) in
      let subject = Rng.int rng max_int in
      let time_ns = Rng.int rng max_int in
      let flow_hash = Rng.int rng (u32 + 1) in
      let wire_bytes = d * 977 and entry = (d * 31) + a in
      let buf = Bytes.create Telemetry_wire.bytes_per_card in
      Telemetry_wire.write buf ~off:0 ~kind ~in_port ~out_port ~node ~value
        ~version ~subject ~time_ns ~flow_hash ~wire_bytes ~entry;
      Telemetry_wire.kind buf ~off:0 = kind
      && Telemetry_wire.in_port buf ~off:0 = in_port
      && Telemetry_wire.out_port buf ~off:0 = out_port
      && Telemetry_wire.node buf ~off:0 = node
      && Telemetry_wire.value buf ~off:0 = value
      && Telemetry_wire.version buf ~off:0 = version
      && Telemetry_wire.subject buf ~off:0 = subject
      && Telemetry_wire.time_ns buf ~off:0 = time_ns
      && Telemetry_wire.flow_hash buf ~off:0 = flow_hash
      && Telemetry_wire.wire_bytes buf ~off:0 = min wire_bytes 0xFFFF
      && Telemetry_wire.entry buf ~off:0 = min entry 0xFFFF)

(* ---- sink accounting -------------------------------------------- *)

(* Each op: 0 drains, n > 0 emits n cards into a deliberately tiny
   sink (4 chunks of 8 cards), so overflow cannibalisation is common.
   Whatever the interleaving: every accepted card is drained, still
   pending, or counted dropped — and memory stays at the cap. *)
let sink_accounting =
  QCheck.Test.make ~name:"sink conserves cards and bounds memory"
    ~count:200
    QCheck.(list small_nat)
    (fun ops ->
      let cards_per_chunk = 8 and max_chunks = 4 in
      let sink = Telemetry_sink.create ~cards_per_chunk ~max_chunks () in
      let cap = cards_per_chunk * max_chunks * Telemetry_wire.bytes_per_card in
      let drained = ref 0 in
      let ok = ref true in
      List.iter
        (fun n ->
          if n = 0 then
            Telemetry_sink.drain sink (fun _ ~off:_ -> incr drained)
          else
            for i = 1 to n do
              Telemetry_sink.emit_hop sink ~now:i ~switch_id:1 ~in_port:0
                ~out_port:0 ~queue_bytes:0 ~version:1 ~frame_id:i
                ~flow_hash:0 ~wire_bytes:64 ~entry:0
            done;
          if Telemetry_sink.card_bytes_alive sink > cap then ok := false)
        ops;
      !ok
      && Telemetry_sink.emitted sink
         = !drained + Telemetry_sink.dropped sink + Telemetry_sink.pending sink)

(* ---- count-min vs exact ----------------------------------------- *)

let cms_exact_of stream =
  let cms = Sketch.Cms.create () in
  let exact = Hashtbl.create 128 in
  List.iter
    (fun (key, w) ->
      Sketch.Cms.add cms ~key w;
      Hashtbl.replace exact key
        (w + Option.value ~default:0 (Hashtbl.find_opt exact key)))
    stream;
  (cms, exact)

(* <= 100 distinct keys in a 2048-wide sketch: a key violating the
   e/width * total bound needs heavy collisions in all [depth] rows at
   once, which the analysis caps at e^-depth per query — and the real
   probability here is far smaller, so the bound check is stable. *)
let cms_bounds =
  QCheck.Test.make ~name:"cms: never under, over by <= e/width * total"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 100 2000) (pair small_nat small_nat))
    (fun stream ->
      let cms, exact = cms_exact_of stream in
      let bound =
        int_of_float
          (Float.ceil
             (Sketch.Cms.epsilon cms *. float_of_int (Sketch.Cms.total cms)))
      in
      Hashtbl.fold
        (fun key exact_v ok ->
          let est = Sketch.Cms.estimate cms ~key in
          ok && est >= exact_v && est - exact_v <= bound)
        exact true)

let cms_merge_identity =
  QCheck.Test.make ~name:"cms: merged shards bit-identical to one stream"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 100 2000) (pair small_nat small_nat))
    (fun stream ->
      let single = Sketch.Cms.create () in
      let shards = Array.init 4 (fun _ -> Sketch.Cms.create ()) in
      List.iteri
        (fun i (key, w) ->
          Sketch.Cms.add single ~key w;
          Sketch.Cms.add shards.((i * 7) land 3) ~key w)
        stream;
      let merged = Sketch.Cms.create () in
      Array.iter (fun s -> Sketch.Cms.merge ~into:merged s) shards;
      Sketch.Cms.equal single merged
      && Sketch.Cms.fingerprint single = Sketch.Cms.fingerprint merged)

(* ---- t-digest vs exact percentiles ------------------------------ *)

let td_delta = 100.0

(* k1 cluster width in rank space at q, plus the oracle's own 1/n
   discretisation — the digest's answer may not sit further from q
   than one cluster. *)
let td_bound ~n q =
  (2.0 *. Float.pi /. td_delta *. sqrt (q *. (1.0 -. q)))
  +. (1.0 /. float_of_int n)

let td_values ints = List.map (fun v -> float_of_int v /. 7.0) ints

let td_within_bound ~slack digest st n q =
  let est = Sketch.Tdigest.quantile digest q in
  let b = slack *. td_bound ~n q in
  let lo = Stats.percentile st (100.0 *. Float.max 0.0 (q -. b)) in
  let hi = Stats.percentile st (100.0 *. Float.min 1.0 (q +. b)) in
  lo -. 1e-9 <= est && est <= hi +. 1e-9

let td_quantiles = [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

let tdigest_rank =
  QCheck.Test.make
    ~name:"t-digest: quantiles within the k1 rank bound of Stats.percentile"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 50 3000) (int_bound 1_000_000))
    (fun ints ->
      let vals = td_values ints in
      let n = List.length vals in
      let digest = Sketch.Tdigest.create ~delta:td_delta () in
      let st = Stats.create () in
      List.iter
        (fun v ->
          Sketch.Tdigest.add digest v;
          Stats.add st v)
        vals;
      Sketch.Tdigest.centroids digest <= int_of_float (2.0 *. td_delta) + 8
      && List.for_all (td_within_bound ~slack:1.0 digest st n) td_quantiles)

(* Merging compresses each centroid set once more, so allow the bound
   to double — still constant, still checked against the exact
   oracle over the concatenated stream. *)
let tdigest_merge_rank =
  QCheck.Test.make
    ~name:"t-digest: merged shards rank-close to the exact oracle"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 50 3000) (int_bound 1_000_000))
    (fun ints ->
      let vals = td_values ints in
      let n = List.length vals in
      let shards = Array.init 4 (fun _ -> Sketch.Tdigest.create ~delta:td_delta ()) in
      let st = Stats.create () in
      List.iteri
        (fun i v ->
          Sketch.Tdigest.add shards.(i land 3) v;
          Stats.add st v)
        vals;
      let merged = Sketch.Tdigest.create ~delta:td_delta () in
      Array.iter (fun s -> Sketch.Tdigest.merge ~into:merged s) shards;
      Sketch.Tdigest.count merged = n
      && List.for_all (td_within_bound ~slack:2.0 merged st n) td_quantiles)

(* ---- collector merge identity ----------------------------------- *)

(* Random card streams split across four shard collectors must merge
   to the same order-independent fingerprint (and the same totals) as
   one collector absorbing everything. *)
let collector_merge =
  QCheck.Test.make ~name:"collector: merged shards fingerprint the stream"
    ~count:50
    QCheck.(list (pair (pair small_nat small_nat) (pair small_nat small_nat)))
    (fun cards ->
      let buf = Bytes.create Telemetry_wire.bytes_per_card in
      let single = Collector.create () in
      let shards = Array.init 4 (fun _ -> Collector.create ()) in
      List.iteri
        (fun i ((a, node), (c, d)) ->
          Telemetry_wire.write buf ~off:0 ~kind:(a land 3) ~in_port:0
            ~out_port:(c land 7) ~node ~value:(d * 13)
            ~version:1 ~subject:i ~time_ns:(i * 10)
            ~flow_hash:((node * 131) + c)
            ~wire_bytes:(64 + d) ~entry:0;
          Collector.absorb_card single buf ~off:0;
          Collector.absorb_card shards.((i * 5) land 3) buf ~off:0)
        cards;
      let merged = Collector.create () in
      Array.iter (fun c -> Collector.merge ~into:merged c) shards;
      Collector.fingerprint merged = Collector.fingerprint single
      && Collector.cards merged = Collector.cards single
      && Collector.hops merged = Collector.hops single
      && Collector.fault_events merged = Collector.fault_events single
      && Collector.links merged = Collector.links single)

let suite =
  [
    qtest wire_roundtrip;
    qtest sink_accounting;
    qtest cms_bounds;
    qtest cms_merge_identity;
    qtest tdigest_rank;
    qtest tdigest_merge_rank;
    qtest collector_merge;
  ]
