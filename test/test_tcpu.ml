(* TCPU semantics: every instruction, CEXEC gating, CSTORE atomicity,
   hop addressing, faults, and the cycle model of paper §3.3. *)

open Tpp
module State = Tpp_asic.State
module Tcpu = Tpp_asic.Tcpu
module Mmu = Tpp_asic.Mmu

let check = Alcotest.check

let make_state () =
  let st = State.create ~switch_id:3 ~num_ports:4 () in
  State.force_queue_depth st ~port:2 ~bytes:4242;
  (State.port st 2).State.Port.capacity_bps <- 10_000_000;
  st

(* Wraps an assembled program in a frame ready for execution, with the
   forwarding metadata a pipeline would have filled in. *)
let frame_of ?defines ?addr_mode ?perhop_len ~mem_len src =
  let tpp =
    match Asm.to_tpp ?defines ?addr_mode ?perhop_len ~mem_len src with
    | Ok tpp -> tpp
    | Error e -> Alcotest.failf "assembly: %s" e
  in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 2;
  frame.Frame.meta.Meta.in_port <- 1;
  frame.Frame.meta.Meta.matched_entry <- 55;
  frame

let exec ?(now = 0) st frame =
  match Tcpu.execute st ~now ~frame with
  | Some r -> r
  | None -> Alcotest.fail "no TPP on frame"

let tpp_of frame = Option.get frame.Frame.tpp

let test_non_tpp_ignored () =
  let st = make_state () in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~payload:Bytes.empty ()
  in
  check Alcotest.bool "ignored" true (Tcpu.execute st ~now:0 ~frame = None);
  check Alcotest.int "no exec counted" 0 st.State.tpp_execs

let test_push_stack () =
  let st = make_state () in
  let frame = frame_of ~mem_len:32 "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n" in
  let r = exec st frame in
  check Alcotest.int "executed" 2 r.Tcpu.executed;
  check Alcotest.bool "no fault" true (r.Tcpu.fault = None);
  let tpp = tpp_of frame in
  check (Alcotest.list Alcotest.int) "stack" [ 3; 4242 ] (Prog.stack_values tpp);
  check Alcotest.int "sp" 8 tpp.Prog.sp;
  check Alcotest.int "hop advanced" 1 tpp.Prog.hop;
  check Alcotest.int "exec counter" 1 st.State.tpp_execs

let test_push_across_hops_accumulates () =
  let st1 = make_state () in
  let st2 = State.create ~switch_id:9 ~num_ports:4 () in
  State.force_queue_depth st2 ~port:2 ~bytes:7;
  let frame = frame_of ~mem_len:32 "PUSH [Queue:QueueSize]\n" in
  ignore (exec st1 frame);
  ignore (exec st2 frame);
  check (Alcotest.list Alcotest.int) "two snapshots" [ 4242; 7 ]
    (Prog.stack_values (tpp_of frame))

let test_pop_and_store_to_sram () =
  let st = make_state () in
  let frame = frame_of ~mem_len:16 "PUSH [Queue:QueueSize]\nPOP [Sram:3]\n" in
  let r = exec st frame in
  check Alcotest.bool "ok" true (r.Tcpu.fault = None);
  check (Alcotest.option Alcotest.int) "sram got the value" (Some 4242)
    (State.sram_get st 3);
  check Alcotest.int "sp back to base" 0 (tpp_of frame).Prog.sp

let test_load_store_mov () =
  let st = make_state () in
  let frame =
    frame_of ~mem_len:16
      "LOAD [PacketMetadata:MatchedEntryID], [Packet:0]\n\
       MOV [Packet:4], 99\n\
       STORE [Sram:1], [Packet:4]\n"
  in
  let r = exec st frame in
  check Alcotest.bool "ok" true (r.Tcpu.fault = None);
  check Alcotest.int "load" 55 (Prog.mem_get (tpp_of frame) 0);
  check Alcotest.int "mov imm" 99 (Prog.mem_get (tpp_of frame) 4);
  check (Alcotest.option Alcotest.int) "store" (Some 99) (State.sram_get st 1)

let binop_case op a b expected () =
  let st = make_state () in
  let src = Printf.sprintf "MOV [Packet:0], %d\n%s [Packet:0], %d\n" a op b in
  let frame = frame_of ~mem_len:8 src in
  let r = exec st frame in
  check Alcotest.bool "ok" true (r.Tcpu.fault = None);
  check Alcotest.int (Printf.sprintf "%d %s %d" a op b) expected
    (Prog.mem_get (tpp_of frame) 0)

let test_sub_wraps_unsigned () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "MOV [Packet:0], 1\nSUB [Packet:0], 2\n" in
  ignore (exec st frame);
  check Alcotest.int "wraps to 2^32-1" 0xFFFF_FFFF (Prog.mem_get (tpp_of frame) 0)

let test_arith_on_sram () =
  let st = make_state () in
  ignore (State.sram_set st 0 10);
  let frame = frame_of ~mem_len:8 "ADD [Sram:0], 5\n" in
  ignore (exec st frame);
  check (Alcotest.option Alcotest.int) "in-switch add" (Some 15) (State.sram_get st 0)

let test_cstore_success_and_failure () =
  let st = make_state () in
  ignore (State.sram_set st 4 5);
  (* Succeeds: register is 5, expect 5, write 9. *)
  let frame = frame_of ~mem_len:0 "CSTORE [Sram:4], 5, 9\n" in
  let r = exec st frame in
  check Alcotest.bool "ok" true (r.Tcpu.fault = None);
  check (Alcotest.option Alcotest.int) "stored" (Some 9) (State.sram_get st 4);
  check Alcotest.int "old value reported" 5 (Prog.mem_get (tpp_of frame) 0);
  (* Fails: register is now 9, expect 5 again. *)
  let frame2 = frame_of ~mem_len:0 "CSTORE [Sram:4], 5, 1\n" in
  ignore (exec st frame2);
  check (Alcotest.option Alcotest.int) "unchanged" (Some 9) (State.sram_get st 4);
  check Alcotest.int "old value exposes failure" 9 (Prog.mem_get (tpp_of frame2) 0)

let test_cexec_gates_execution () =
  let st = make_state () in
  (* Switch id is 3: a check for 3 passes, a check for 4 halts. *)
  let pass =
    frame_of ~mem_len:8 "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 3\nMOV [Packet:0], 1\n"
  in
  let r = exec st pass in
  check Alcotest.int "both ran" 2 r.Tcpu.executed;
  check Alcotest.bool "not stopped" false r.Tcpu.stopped_by_cexec;
  check Alcotest.int "effect" 1 (Prog.mem_get (tpp_of pass) 8);
  let blocked =
    frame_of ~mem_len:8 "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 4\nMOV [Packet:0], 1\n"
  in
  let r2 = exec st blocked in
  check Alcotest.int "stopped after check" 1 r2.Tcpu.executed;
  check Alcotest.bool "flagged" true r2.Tcpu.stopped_by_cexec;
  check Alcotest.bool "no fault" true (r2.Tcpu.fault = None);
  check Alcotest.int "no effect" 0 (Prog.mem_get (tpp_of blocked) 8);
  check Alcotest.int "hop still advances" 1 (tpp_of blocked).Prog.hop

let test_cexec_mask () =
  let st = make_state () in
  (* Low two bits of switch id 3 are 0b11. *)
  let frame = frame_of ~mem_len:8 "CEXEC [Switch:SwitchID], 3, 3\nMOV [Packet:0], 1\n" in
  let r = exec st frame in
  check Alcotest.int "mask applied" 2 r.Tcpu.executed

let test_halt () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "HALT\nMOV [Packet:0], 1\n" in
  let r = exec st frame in
  check Alcotest.int "stopped" 1 r.Tcpu.executed;
  check Alcotest.bool "halt is not cexec" false r.Tcpu.stopped_by_cexec;
  check Alcotest.int "nothing written" 0 (Prog.mem_get (tpp_of frame) 0)

let test_hop_addressing () =
  let st1 = make_state () in
  let st2 = State.create ~switch_id:9 ~num_ports:4 () in
  let frame =
    frame_of ~addr_mode:Prog.Hop_addressed ~perhop_len:8 ~mem_len:32
      "LOAD [Switch:SwitchID], [Packet:Hop[0]]\n\
       LOAD [PacketMetadata:OutputPort], [Packet:Hop[1]]\n"
  in
  ignore (exec st1 frame);
  frame.Frame.meta.Meta.out_port <- 1;
  ignore (exec st2 frame);
  let tpp = tpp_of frame in
  check (Alcotest.list Alcotest.int) "hop 0" [ 3; 2 ] (Prog.hop_block tpp ~hop:0);
  check (Alcotest.list Alcotest.int) "hop 1" [ 9; 1 ] (Prog.hop_block tpp ~hop:1)

(* --- Faults -------------------------------------------------------------- *)

let expect_fault frame st predicate name =
  let r = exec st frame in
  (match r.Tcpu.fault with
  | Some f when predicate f -> ()
  | Some f -> Alcotest.failf "%s: wrong fault %s" name (Tcpu.fault_message f)
  | None -> Alcotest.failf "%s: expected a fault" name);
  check Alcotest.bool (name ^ ": tpp flagged") true (tpp_of frame).Prog.faulted;
  check Alcotest.bool (name ^ ": switch counted") true (st.State.tpp_faults >= 1)

let test_fault_write_to_stat () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "MOV [Packet:0], 1\nSTORE [Queue:QueueSize], [Packet:0]\n" in
  expect_fault frame st
    (function Tcpu.Mmu_fault (Mmu.Read_only _) -> true | _ -> false)
    "write stat"

let test_fault_stack_overflow () =
  let st = make_state () in
  let frame = frame_of ~mem_len:4 "PUSH [Switch:SwitchID]\nPUSH [Switch:SwitchID]\n" in
  expect_fault frame st (fun f -> f = Tcpu.Stack_overflow) "overflow"

let test_fault_stack_underflow () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "POP [Sram:0]\n" in
  expect_fault frame st (fun f -> f = Tcpu.Stack_underflow) "underflow"

let test_fault_packet_oob () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "LOAD [Switch:SwitchID], [Packet:Hop[100]]\n" in
  expect_fault frame st
    (function Tcpu.Packet_oob _ -> true | _ -> false)
    "packet oob"

let test_fault_stops_execution_midway () =
  let st = make_state () in
  let frame =
    frame_of ~mem_len:8
      "MOV [Packet:0], 1\nSTORE [Queue:QueueSize], [Packet:0]\nMOV [Packet:4], 2\n"
  in
  let r = exec st frame in
  check Alcotest.int "stopped at the fault" 2 r.Tcpu.executed;
  check Alcotest.int "later instr skipped" 0 (Prog.mem_get (tpp_of frame) 4)

let test_faulted_tpp_is_inert () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "POP [Sram:0]\n" in
  ignore (exec st frame);
  let execs = st.State.tpp_execs in
  let r = exec st frame in
  check Alcotest.int "no instructions re-run" 0 r.Tcpu.executed;
  check Alcotest.int "not recounted" execs st.State.tpp_execs;
  check Alcotest.int "hop frozen" 1 (tpp_of frame).Prog.hop

let test_fault_write_to_immediate () =
  let st = make_state () in
  let tpp =
    Prog.make ~program:[ Instr.Mov (Instr.Imm 1, Instr.Imm 2) ] ~mem_len:8 ()
  in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 0;
  let r = exec st frame in
  check Alcotest.bool "immediate write fault" true
    (r.Tcpu.fault = Some Tcpu.Immediate_write)

let test_fault_bad_pool_operand () =
  let st = make_state () in
  let frame = frame_of ~mem_len:8 "CEXEC [Switch:SwitchID], 4095\n" in
  let r = exec st frame in
  check Alcotest.bool "pool must be packet memory" true
    (match r.Tcpu.fault with Some (Tcpu.Bad_operand _) -> true | _ -> false)

(* --- Backends -------------------------------------------------------------- *)

(* The suite above runs under the default Compiled backend; these pin a
   few scenarios to the Interpreter explicitly and hold the observable
   outcomes equal. (The exhaustive differential test is in
   test_compile.ml.) *)

let observe backend src ~mem_len =
  let st = make_state () in
  let frame = frame_of ~mem_len src in
  let r =
    match Tcpu.execute ~backend st ~now:0 ~frame with
    | Some r -> r
    | None -> Alcotest.fail "no TPP on frame"
  in
  let tpp = tpp_of frame in
  ( r.Tcpu.executed, r.Tcpu.cycles, r.Tcpu.stopped_by_cexec,
    Option.map Tcpu.fault_message r.Tcpu.fault,
    Prog.words tpp, tpp.Prog.sp, tpp.Prog.hop, tpp.Prog.faulted,
    List.init 8 (fun i -> State.sram_get st i),
    (st.State.tpp_execs, st.State.tpp_faults, st.State.tpp_cycles) )

let backend_case name src ~mem_len () =
  check Alcotest.bool "default backend is compiled" true
    (Tcpu.default_backend () = Tcpu.Compiled);
  if observe Tcpu.Interpreter src ~mem_len <> observe Tcpu.Compiled src ~mem_len
  then Alcotest.failf "%s: interpreter and compiled backends diverge" name

let test_backend_stack () =
  backend_case "stack"
    "PUSH [Queue:QueueSize]\nPOP [Sram:3]\nADD [Sram:3], 5\nLOAD [Sram:3], [Packet:0]\n"
    ~mem_len:16 ()

let test_backend_cexec () =
  backend_case "cexec" "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 4\nMOV [Packet:0], 1\n"
    ~mem_len:8 ()

let test_backend_fault () =
  backend_case "fault"
    "MOV [Packet:0], 1\nSTORE [Queue:QueueSize], [Packet:0]\nMOV [Packet:4], 2\n"
    ~mem_len:8 ()

(* --- Cycle model ----------------------------------------------------------- *)

let test_cycle_model () =
  check Alcotest.int "pipeline fill" 4 (Tcpu.cycles_for 0);
  check Alcotest.int "five instructions" 9 (Tcpu.cycles_for 5);
  check Alcotest.bool "five instructions fit the cut-through budget" true
    (Tcpu.cycles_for 5 < Tcpu.cycle_budget);
  let st = make_state () in
  let frame = frame_of ~mem_len:32 "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n" in
  let r = exec st frame in
  check Alcotest.int "cycles reported" (Tcpu.cycles_for 2) r.Tcpu.cycles;
  check Alcotest.int "switch accumulates" (Tcpu.cycles_for 2) st.State.tpp_cycles

let suite =
  [
    Alcotest.test_case "non-TPP packets ignored" `Quick test_non_tpp_ignored;
    Alcotest.test_case "push builds stack" `Quick test_push_stack;
    Alcotest.test_case "push across hops" `Quick test_push_across_hops_accumulates;
    Alcotest.test_case "pop/store to sram" `Quick test_pop_and_store_to_sram;
    Alcotest.test_case "load/store/mov" `Quick test_load_store_mov;
    Alcotest.test_case "add" `Quick (binop_case "ADD" 7 5 12);
    Alcotest.test_case "and" `Quick (binop_case "AND" 12 10 8);
    Alcotest.test_case "or" `Quick (binop_case "OR" 12 10 14);
    Alcotest.test_case "min" `Quick (binop_case "MIN" 12 10 10);
    Alcotest.test_case "max" `Quick (binop_case "MAX" 12 10 12);
    Alcotest.test_case "sub wraps unsigned" `Quick test_sub_wraps_unsigned;
    Alcotest.test_case "arith on sram" `Quick test_arith_on_sram;
    Alcotest.test_case "cstore success/failure" `Quick test_cstore_success_and_failure;
    Alcotest.test_case "cexec gating" `Quick test_cexec_gates_execution;
    Alcotest.test_case "cexec mask" `Quick test_cexec_mask;
    Alcotest.test_case "halt" `Quick test_halt;
    Alcotest.test_case "hop addressing" `Quick test_hop_addressing;
    Alcotest.test_case "fault: write to stat" `Quick test_fault_write_to_stat;
    Alcotest.test_case "fault: stack overflow" `Quick test_fault_stack_overflow;
    Alcotest.test_case "fault: stack underflow" `Quick test_fault_stack_underflow;
    Alcotest.test_case "fault: packet oob" `Quick test_fault_packet_oob;
    Alcotest.test_case "fault stops execution" `Quick test_fault_stops_execution_midway;
    Alcotest.test_case "faulted tpp inert" `Quick test_faulted_tpp_is_inert;
    Alcotest.test_case "fault: write to immediate" `Quick test_fault_write_to_immediate;
    Alcotest.test_case "fault: bad pool operand" `Quick test_fault_bad_pool_operand;
    Alcotest.test_case "backend parity: stack" `Quick test_backend_stack;
    Alcotest.test_case "backend parity: cexec" `Quick test_backend_cexec;
    Alcotest.test_case "backend parity: fault" `Quick test_backend_fault;
    Alcotest.test_case "cycle model" `Quick test_cycle_model;
  ]
