(* Switch pipeline tests: lookup precedence, metadata, queue accounting
   and tail drop, flooding, TPP stripping, and the TCPU placement. *)

open Tpp
module State = Tpp_asic.State

let check = Alcotest.check

let host_frame ?tpp ?(payload = 100) ~to_ip () =
  Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
    ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:to_ip ~src_port:5 ~dst_port:6 ?tpp
    ~payload:(Bytes.create payload) ()

let dst_ip = Ipv4.Addr.of_host_id 2

let make_switch () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  Switch.install_route sw (Ipv4.Prefix.host dst_ip) ~port:2 ~entry_id:11 ~version:1;
  Switch.set_version sw 1;
  sw

let queued_ports = function
  | Switch.Queued ports -> ports
  | Switch.Dropped reason -> Alcotest.failf "unexpectedly dropped: %s" reason

let test_l3_forwarding_and_meta () =
  let sw = make_switch () in
  let frame = host_frame ~to_ip:dst_ip () in
  let ports = queued_ports (Switch.handle_ingress sw ~now:99 ~in_port:0 frame) in
  check (Alcotest.list Alcotest.int) "queued on route port" [ 2 ] ports;
  let meta = frame.Frame.meta in
  check Alcotest.int "in port" 0 meta.Meta.in_port;
  check Alcotest.int "out port" 2 meta.Meta.out_port;
  check Alcotest.int "entry" 11 meta.Meta.matched_entry;
  check Alcotest.int "version" 1 meta.Meta.matched_version;
  check Alcotest.int "table L3" 2 meta.Meta.table_hit;
  check Alcotest.int "arrival stamped" 99 meta.Meta.arrival_ns;
  check Alcotest.int "queue holds it" 1 (Switch.queue_packets sw ~port:2)

let test_tcam_overrides_l3 () =
  let sw = make_switch () in
  Switch.install_tcam sw
    { Tables.Tcam.any with Tables.Tcam.priority = 5;
      dst_ip = Some (dst_ip, 0xFFFFFFFF) }
    { Tables.action = Tables.Forward 3; entry_id = 77; version = 2 };
  let frame = host_frame ~to_ip:dst_ip () in
  let ports = queued_ports (Switch.handle_ingress sw ~now:0 ~in_port:0 frame) in
  check (Alcotest.list Alcotest.int) "tcam port" [ 3 ] ports;
  check Alcotest.int "tcam entry" 77 frame.Frame.meta.Meta.matched_entry;
  check Alcotest.int "table TCAM" 3 frame.Frame.meta.Meta.table_hit

let test_l2_fallback () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  Switch.install_l2 sw (Mac.of_host_id 2) ~port:1 ~entry_id:5 ~version:1;
  let frame = host_frame ~to_ip:dst_ip () in
  let ports = queued_ports (Switch.handle_ingress sw ~now:0 ~in_port:0 frame) in
  check (Alcotest.list Alcotest.int) "l2 port" [ 1 ] ports;
  check Alcotest.int "table L2" 1 frame.Frame.meta.Meta.table_hit

let test_flood_on_miss () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  let frame = host_frame ~to_ip:dst_ip () in
  let ports = queued_ports (Switch.handle_ingress sw ~now:0 ~in_port:1 frame) in
  check (Alcotest.list Alcotest.int) "all but ingress" [ 0; 2; 3 ] ports;
  check Alcotest.int "copies queued" 1 (Switch.queue_packets sw ~port:0);
  check Alcotest.int "copies queued" 1 (Switch.queue_packets sw ~port:3)

let test_drop_rule () =
  let sw = make_switch () in
  Switch.install_tcam sw
    { Tables.Tcam.any with Tables.Tcam.priority = 9 }
    { Tables.action = Tables.Drop; entry_id = 1; version = 1 };
  match Switch.handle_ingress sw ~now:0 ~in_port:0 (host_frame ~to_ip:dst_ip ()) with
  | Switch.Dropped _ -> ()
  | Switch.Queued _ -> Alcotest.fail "drop rule ignored"

let test_queue_accounting_and_tail_drop () =
  let sw = make_switch () in
  let wire = Frame.wire_size (host_frame ~to_ip:dst_ip ()) in
  Switch.set_queue_limit sw ~port:2 ~bytes:(2 * wire);
  let send () = Switch.handle_ingress sw ~now:0 ~in_port:0 (host_frame ~to_ip:dst_ip ()) in
  ignore (send ());
  ignore (send ());
  check Alcotest.int "two queued" (2 * wire) (Switch.queue_bytes sw ~port:2);
  (match send () with
  | Switch.Dropped "queue full" -> ()
  | _ -> Alcotest.fail "expected tail drop");
  let st = Switch.state sw in
  check Alcotest.int "port drop counter" 1
    (State.port_stat st ~port:2 Vaddr.Port_stat.Drops);
  check Alcotest.int "switch drop counter" 1 st.State.drops;
  (* Draining restores the byte count. *)
  ignore (Switch.dequeue sw ~port:2);
  check Alcotest.int "after dequeue" wire (Switch.queue_bytes sw ~port:2);
  check Alcotest.int "tx counted" wire (State.port_stat st ~port:2 Vaddr.Port_stat.Tx_bytes)

let test_rx_counters () =
  let sw = make_switch () in
  let frame = host_frame ~to_ip:dst_ip () in
  let wire = Frame.wire_size frame in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  let st = Switch.state sw in
  check Alcotest.int "rx bytes" wire (State.port_stat st ~port:0 Vaddr.Port_stat.Rx_bytes);
  check Alcotest.int "rx pkts" 1 (State.port_stat st ~port:0 Vaddr.Port_stat.Rx_pkts);
  check Alcotest.int "switch bytes" wire st.State.bytes_seen;
  check Alcotest.int "offered to egress" wire (State.port st 2).State.Port.offered_bytes

let probe_tpp () =
  match Asm.to_tpp ~mem_len:16 "PUSH [Queue:QueueSize]\n" with
  | Ok tpp -> tpp
  | Error e -> Alcotest.failf "assembly: %s" e

let test_tcpu_runs_in_pipeline () =
  let sw = make_switch () in
  let frame = host_frame ~tpp:(probe_tpp ()) ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  let tpp = Option.get frame.Frame.tpp in
  check Alcotest.int "hop advanced" 1 tpp.Prog.hop;
  (* The queue was empty when the probe was about to join it. *)
  check (Alcotest.list Alcotest.int) "reads pre-enqueue occupancy" [ 0 ]
    (Prog.stack_values tpp);
  match Switch.last_tcpu_result sw with
  | Some r -> check Alcotest.int "one instruction" 1 r.Tpp_asic.Tcpu.executed
  | None -> Alcotest.fail "no TCPU result recorded"

let test_tcpu_sees_prior_queue () =
  let sw = make_switch () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (host_frame ~to_ip:dst_ip ()));
  let backlog = Switch.queue_bytes sw ~port:2 in
  let frame = host_frame ~tpp:(probe_tpp ()) ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  check (Alcotest.list Alcotest.int) "sees the backlog" [ backlog ]
    (Prog.stack_values (Option.get frame.Frame.tpp))

let test_tcpu_disabled () =
  let sw = make_switch () in
  Switch.set_tcpu_enabled sw false;
  let frame = host_frame ~tpp:(probe_tpp ()) ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  let tpp = Option.get frame.Frame.tpp in
  check Alcotest.int "not executed" 0 tpp.Prog.hop;
  check (Alcotest.list Alcotest.int) "stack untouched" [] (Prog.stack_values tpp)

let test_strip_tpp_at_edge () =
  let sw = make_switch () in
  Switch.set_strip_tpp sw ~port:0 true;
  let frame = host_frame ~tpp:(probe_tpp ()) ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  (match Switch.dequeue sw ~port:2 with
  | Some forwarded ->
    check Alcotest.bool "TPP stripped" true (Option.is_none forwarded.Frame.tpp);
    check Alcotest.int "ethertype rewritten" Ethernet.ethertype_ipv4
      (Frame.ethertype forwarded)
  | None -> Alcotest.fail "frame lost");
  (* The same TPP through a non-stripping port survives. *)
  let frame2 = host_frame ~tpp:(probe_tpp ()) ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:1 frame2);
  match Switch.dequeue sw ~port:2 with
  | Some forwarded ->
    check Alcotest.bool "TPP kept" true (Option.is_some forwarded.Frame.tpp)
  | None -> Alcotest.fail "frame lost"

let test_tap () =
  let sw = make_switch () in
  let seen = ref [] in
  Switch.set_tap sw
    (Some (fun ~now:_ ~in_port ~out_port frame ->
         seen := (in_port, out_port, frame.Frame.id) :: !seen));
  let frame = host_frame ~to_ip:dst_ip () in
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "tap fired" [ (0, 2, frame.Frame.id) ] !seen;
  Switch.set_tap sw None;
  ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 (host_frame ~to_ip:dst_ip ()));
  check Alcotest.int "tap removed" 1 (List.length !seen)

let test_invalid_ingress_port () =
  let sw = make_switch () in
  match Switch.handle_ingress sw ~now:0 ~in_port:9 (host_frame ~to_ip:dst_ip ()) with
  | Switch.Dropped _ -> ()
  | Switch.Queued _ -> Alcotest.fail "invalid port accepted"

let suite =
  [
    Alcotest.test_case "l3 forwarding and metadata" `Quick test_l3_forwarding_and_meta;
    Alcotest.test_case "tcam overrides l3" `Quick test_tcam_overrides_l3;
    Alcotest.test_case "l2 fallback" `Quick test_l2_fallback;
    Alcotest.test_case "flood on miss" `Quick test_flood_on_miss;
    Alcotest.test_case "drop rule" `Quick test_drop_rule;
    Alcotest.test_case "queue accounting and tail drop" `Quick
      test_queue_accounting_and_tail_drop;
    Alcotest.test_case "rx counters" `Quick test_rx_counters;
    Alcotest.test_case "tcpu in pipeline" `Quick test_tcpu_runs_in_pipeline;
    Alcotest.test_case "tcpu sees prior queue" `Quick test_tcpu_sees_prior_queue;
    Alcotest.test_case "tcpu disabled" `Quick test_tcpu_disabled;
    Alcotest.test_case "strip tpp at edge" `Quick test_strip_tpp_at_edge;
    Alcotest.test_case "tap" `Quick test_tap;
    Alcotest.test_case "invalid ingress port" `Quick test_invalid_ingress_port;
  ]
