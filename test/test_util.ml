(* Unit and property tests for the tpp_util substrate. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Time ----------------------------------------------------------- *)

let test_time_units () =
  check Alcotest.int "us" 1_000 (Time_ns.us 1);
  check Alcotest.int "ms" 1_000_000 (Time_ns.ms 1);
  check Alcotest.int "sec" 1_000_000_000 (Time_ns.sec 1);
  check (Alcotest.float 1e-9) "to_sec" 1.5 (Time_ns.to_sec_f (Time_ns.ms 1500));
  check Alcotest.int "of_sec_f" (Time_ns.ms 250) (Time_ns.of_sec_f 0.25);
  check Alcotest.int "add" 3 (Time_ns.add 1 2);
  check Alcotest.int "diff" 5 (Time_ns.diff 8 3)

let test_time_pp () =
  let render t = Format.asprintf "%a" Time_ns.pp t in
  check Alcotest.string "ns" "42ns" (render 42);
  check Alcotest.string "us" "1.500us" (render 1500);
  check Alcotest.string "ms" "2.000ms" (render (Time_ns.ms 2));
  check Alcotest.string "s" "3.000s" (render (Time_ns.sec 3))

(* --- Buf ------------------------------------------------------------ *)

let test_buf_roundtrip () =
  let w = Buf.Writer.create () in
  Buf.Writer.u8 w 0xAB;
  Buf.Writer.u16 w 0xCDEF;
  Buf.Writer.u32i w 0xDEADBEEF;
  Buf.Writer.string w "hello";
  Buf.Writer.zeros w 3;
  let b = Buf.Writer.contents w in
  check Alcotest.int "length" (1 + 2 + 4 + 5 + 3) (Bytes.length b);
  let r = Buf.Reader.of_bytes b in
  check Alcotest.int "u8" 0xAB (Buf.Reader.u8 r);
  check Alcotest.int "u16" 0xCDEF (Buf.Reader.u16 r);
  check Alcotest.int "u32i" 0xDEADBEEF (Buf.Reader.u32i r);
  check Alcotest.string "string" "hello" (Bytes.to_string (Buf.Reader.bytes r 5));
  Buf.Reader.skip r 3;
  check Alcotest.int "remaining" 0 (Buf.Reader.remaining r)

let test_buf_growth () =
  let w = Buf.Writer.create ~capacity:1 () in
  for i = 0 to 999 do
    Buf.Writer.u32i w i
  done;
  check Alcotest.int "grew" 4000 (Buf.Writer.length w);
  let b = Buf.Writer.contents w in
  check Alcotest.int "word 999" 999 (Buf.get_u32i b (999 * 4))

let test_buf_oob () =
  let r = Buf.Reader.of_string "ab" in
  Alcotest.check_raises "u32 oob" (Buf.Out_of_bounds "Reader.u32") (fun () ->
      ignore (Buf.Reader.u32 r));
  let b = Bytes.create 4 in
  Alcotest.check_raises "set oob" (Buf.Out_of_bounds "set_u32i") (fun () ->
      Buf.set_u32i b 1 0);
  Alcotest.check_raises "get negative" (Buf.Out_of_bounds "get_u32i") (fun () ->
      ignore (Buf.get_u32i b (-1)))

let test_buf_window () =
  let b = Bytes.of_string "0123456789" in
  let r = Buf.Reader.of_bytes ~pos:2 ~len:4 b in
  check Alcotest.int "windowed remaining" 4 (Buf.Reader.remaining r);
  check Alcotest.int "first byte" (Char.code '2') (Buf.Reader.u8 r);
  check Alcotest.int "pos relative" 1 (Buf.Reader.pos r)

let prop_buf_u32_roundtrip =
  QCheck.Test.make ~name:"buf u32 write/read roundtrip" ~count:200
    QCheck.(list (int_bound 0xFFFFFF))
    (fun values ->
      let w = Buf.Writer.create () in
      List.iter (fun v -> Buf.Writer.u32i w v) values;
      let r = Buf.Reader.of_bytes (Buf.Writer.contents w) in
      List.for_all (fun v -> Buf.Reader.u32i r = v) values)

(* --- Heap ----------------------------------------------------------- *)

let drain heap =
  let rec go acc =
    match Tpp_util.Heap.pop heap with
    | Some (p, v) -> go ((p, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_heap_order () =
  let h = Tpp_util.Heap.create () in
  List.iter (fun p -> Tpp_util.Heap.push h ~prio:p p) [ 5; 1; 4; 1; 3 ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted" [ (1, 1); (1, 1); (3, 3); (4, 4); (5, 5) ] (drain h)

let test_heap_fifo_ties () =
  let h = Tpp_util.Heap.create () in
  List.iteri (fun i name -> Tpp_util.Heap.push h ~prio:7 (i, name))
    [ "a"; "b"; "c" ];
  let popped = List.map snd (drain h) in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "insertion order on equal priority" [ (0, "a"); (1, "b"); (2, "c") ] popped

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority" ~count:200
    QCheck.(list small_int)
    (fun prios ->
      let h = Tpp_util.Heap.create () in
      List.iter (fun p -> Tpp_util.Heap.push h ~prio:p p) prios;
      let out = List.map fst (drain h) in
      out = List.sort Int.compare prios)

(* Reference model: the heap must agree with a sorted association list
   under arbitrary interleavings of push, pop and clear, including the
   FIFO-on-equal-priority tie-break. Op encoding: -2 = clear, -1 = pop,
   n >= 0 = push with priority [n mod 8] (small range forces ties). *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches reference model under push/pop/clear"
    ~count:300
    QCheck.(list (int_range (-2) 40))
    (fun ops ->
      let h = Tpp_util.Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let by_key (p, s, _) (p', s', _) =
        if p <> p' then Int.compare p p' else Int.compare s s'
      in
      List.for_all
        (fun op ->
          if op = -2 then begin
            Tpp_util.Heap.clear h;
            model := [];
            seq := 0;
            Tpp_util.Heap.is_empty h
          end
          else if op = -1 then begin
            match (Tpp_util.Heap.pop h, List.sort by_key !model) with
            | None, [] -> true
            | Some (p, v), (mp, _, mv) :: rest ->
              model := rest;
              p = mp && v = mv
            | _ -> false
          end
          else begin
            let prio = op mod 8 in
            Tpp_util.Heap.push h ~prio !seq;
            model := (prio, !seq, !seq) :: !model;
            incr seq;
            Tpp_util.Heap.length h = List.length !model
          end)
        ops)

(* The heap must not pin values it no longer holds: a popped value (an
   event callback and whatever frames it captured, in the engine's case)
   has to be collectable immediately. *)
let test_heap_pop_releases () =
  let h = Tpp_util.Heap.create () in
  let w = Weak.create 1 in
  Weak.set w 0 (Some (Bytes.create 64));
  (match Weak.get w 0 with
  | Some v -> Tpp_util.Heap.push h ~prio:1 v
  | None -> Alcotest.fail "weak target vanished early");
  ignore (Tpp_util.Heap.pop h);
  Gc.full_major ();
  check Alcotest.bool "popped value collected" true (Weak.get w 0 = None)

let test_heap_clear_releases () =
  let h = Tpp_util.Heap.create () in
  let w = Weak.create 1 in
  Weak.set w 0 (Some (Bytes.create 64));
  (match Weak.get w 0 with
  | Some v -> Tpp_util.Heap.push h ~prio:1 v
  | None -> Alcotest.fail "weak target vanished early");
  Tpp_util.Heap.clear h;
  Gc.full_major ();
  check Alcotest.bool "cleared value collected" true (Weak.get w 0 = None)

let test_heap_alloc_free_accessors () =
  let h = Tpp_util.Heap.create () in
  check Alcotest.int "peek_prio_or empty" max_int
    (Tpp_util.Heap.peek_prio_or h ~default:max_int);
  check Alcotest.int "pop_value empty" (-1) (Tpp_util.Heap.pop_value h ~default:(-1));
  Tpp_util.Heap.push h ~prio:5 50;
  Tpp_util.Heap.push h ~prio:3 30;
  check Alcotest.int "peek_prio_or" 3 (Tpp_util.Heap.peek_prio_or h ~default:max_int);
  check Alcotest.int "pop_value" 30 (Tpp_util.Heap.pop_value h ~default:(-1));
  check Alcotest.int "then next" 50 (Tpp_util.Heap.pop_value h ~default:(-1));
  check Alcotest.bool "drained" true (Tpp_util.Heap.is_empty h)

(* --- Wheel ----------------------------------------------------------- *)

module Wheel = Tpp_util.Wheel

let drain_wheel w =
  let rec go acc =
    match Wheel.pop w with
    | Some (p, v) -> go ((p, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_wheel_order () =
  let w = Wheel.create () in
  List.iter (fun p -> Wheel.push w ~prio:p p) [ 5; 1; 4; 1; 3 ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted" [ (1, 1); (1, 1); (3, 3); (4, 4); (5, 5) ] (drain_wheel w)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  (* Same timestamp pushed around cursor movement: FIFO must hold both
     within one batch and across the interleaved pop. *)
  Wheel.push w ~prio:7 0;
  Wheel.push w ~prio:7 1;
  Wheel.push w ~prio:3 99;
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "earlier time first" (Some (3, 99)) (Wheel.pop w);
  Wheel.push w ~prio:7 2;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "push order on equal priority"
    [ (7, 0); (7, 1); (7, 2) ]
    (drain_wheel w)

let test_wheel_overflow_horizon () =
  let w = Wheel.create () in
  (* Beyond-horizon entries (bit >= 60 differs from the cursor) live in
     the overflow heap; max_int is the engine's "idle sentinel" case. *)
  Wheel.push w ~prio:max_int 1;
  Wheel.push w ~prio:(1 lsl 60) 2;
  Wheel.push w ~prio:((1 lsl 59) + 5) 3;  (* top wheel level *)
  Wheel.push w ~prio:5 4;
  check Alcotest.int "length counts both sides" 4 (Wheel.length w);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "wheel and overflow interleave by time"
    [ (5, 4); ((1 lsl 59) + 5, 3); (1 lsl 60, 2); (max_int, 1) ]
    (drain_wheel w)

let test_wheel_level_rollover () =
  let w = Wheel.create () in
  (* Times straddling level boundaries (32, 1024, 2^15) force cascades
     as the cursor crosses digit edges; order must survive them. *)
  let times = [ 31; 32; 33; 1023; 1024; 1025; (1 lsl 15) + 1; 40_000 ] in
  List.iteri (fun i tm -> Wheel.push w ~prio:tm i) (List.rev times);
  let expect = List.sort compare (List.mapi (fun i tm -> (tm, i)) (List.rev times)) in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "cascades preserve time order" expect (drain_wheel w);
  (* After draining, the cursor sits at the last popped time; pushing at
     that exact time is still legal (ties are future events). *)
  Wheel.push w ~prio:40_000 7;
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "push at cursor" (Some (40_000, 7)) (Wheel.pop w)

let test_wheel_rejects_past () =
  let w = Wheel.create () in
  Wheel.push w ~prio:100 0;
  ignore (Wheel.pop w);
  Alcotest.check_raises "below cursor"
    (Invalid_argument "Wheel.push: priority below the cursor (scheduling in the past)")
    (fun () -> Wheel.push w ~prio:99 1)

let test_wheel_clear () =
  let w = Wheel.create () in
  Wheel.push w ~prio:50 1;
  Wheel.push w ~prio:max_int 2;
  ignore (Wheel.pop w);
  Wheel.clear w;
  check Alcotest.bool "empty after clear" true (Wheel.is_empty w);
  check Alcotest.int "cursor reset" 0 (Wheel.cursor w);
  (* The old cursor (50) no longer constrains pushes. *)
  Wheel.push w ~prio:1 3;
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "usable after clear" (Some (1, 3)) (Wheel.pop w)

(* Differential oracle: under any monotonic schedule — clustered equal
   timestamps, far-future overflow times, pops interleaved with pushes —
   the wheel must pop the exact (prio, payload) sequence the stable heap
   does. This is the property the engine's scheduler swap rests on.
   Op encoding: -1 = pop (from both), n >= 0 = push at now + offset,
   where the offset class cycles through zero / clustered / mid-range /
   beyond-horizon. *)
let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pops identically to the stable heap" ~count:300
    QCheck.(list (int_range (-1) 60))
    (fun ops ->
      let w = Wheel.create () in
      let h = Tpp_util.Heap.create () in
      let now = ref 0 in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          if op < 0 then begin
            let a = Wheel.pop w and b = Tpp_util.Heap.pop h in
            (match a with Some (p, _) -> now := max !now p | None -> ());
            a = b
          end
          else begin
            let offset =
              match op mod 4 with
              | 0 -> 0
              | 1 -> op mod 8
              | 2 -> op * 104_729
              | _ -> (1 lsl 61) + op
            in
            (* Saturating: chained far-future offsets must not wrap
               negative (the wheel rejects priorities below the cursor). *)
            let prio =
              if offset > max_int - !now then max_int else !now + offset
            in
            incr seq;
            Wheel.push w ~prio !seq;
            Tpp_util.Heap.push h ~prio !seq;
            Wheel.length w = Tpp_util.Heap.length h
          end)
        ops
      && drain_wheel w = drain h)

(* --- Backdated emission stamps --------------------------------------- *)

(* Among equal priorities both queues order by the [emitted] stamp
   before insertion sequence — the mechanism the sharded simulator uses
   to make an adopted cross-shard delivery (pushed at inbox-drain time)
   sort as if it had been pushed at its original emission time. *)

let test_heap_backdated_ties () =
  let h = Tpp_util.Heap.create () in
  Tpp_util.Heap.push h ~emitted:10 ~prio:7 0;
  Tpp_util.Heap.push h ~emitted:5 ~prio:7 1;   (* backdated: pops first *)
  Tpp_util.Heap.push h ~emitted:10 ~prio:7 2;  (* equal stamp: after 0 *)
  Tpp_util.Heap.push h ~emitted:99 ~prio:3 3;  (* earlier prio still wins *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "(prio, emitted, seq) order"
    [ (3, 3); (7, 1); (7, 0); (7, 2) ]
    (drain h)

let test_wheel_backdated_ties () =
  let w = Wheel.create () in
  Wheel.push w ~emitted:10 ~prio:7 0;
  Wheel.push w ~emitted:5 ~prio:7 1;
  Wheel.push w ~emitted:10 ~prio:7 2;
  Wheel.push w ~emitted:99 ~prio:3 3;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "(prio, emitted, seq) order"
    [ (3, 3); (7, 1); (7, 0); (7, 2) ]
    (drain_wheel w);
  (* Backdating must also order across the wheel/overflow split and
     survive peeks (which memoise the minimum) between pushes. *)
  Wheel.push w ~emitted:20 ~prio:max_int 4;
  check Alcotest.int "peek before backdated push" max_int
    (Wheel.peek_prio_or w ~default:0);
  Wheel.push w ~emitted:15 ~prio:max_int 5;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "overflow ties by stamp"
    [ (max_int, 5); (max_int, 4) ]
    (drain_wheel w)

(* Same differential property as above, with the pushes stamped — some
   backdated — exercising the wheel's slot-scan tie-break path against
   the stable heap's. *)
let prop_wheel_matches_heap_backdated =
  QCheck.Test.make
    ~name:"wheel pops identically to the heap under backdated stamps"
    ~count:300
    QCheck.(list (pair (int_range (-1) 60) (int_range 0 15)))
    (fun ops ->
      let w = Wheel.create () in
      let h = Tpp_util.Heap.create () in
      let now = ref 0 in
      let seq = ref 0 in
      List.for_all
        (fun (op, emitted) ->
          if op < 0 then begin
            let a = Wheel.pop w and b = Tpp_util.Heap.pop h in
            (match a with Some (p, _) -> now := max !now p | None -> ());
            a = b
          end
          else begin
            let offset =
              match op mod 4 with
              | 0 -> 0
              | 1 -> op mod 8
              | 2 -> op * 104_729
              | _ -> (1 lsl 61) + op
            in
            let prio =
              if offset > max_int - !now then max_int else !now + offset
            in
            incr seq;
            Wheel.push w ~emitted ~prio !seq;
            Tpp_util.Heap.push h ~emitted ~prio !seq;
            Wheel.length w = Tpp_util.Heap.length h
          end)
        ops
      && drain_wheel w = drain h)

(* --- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int c 1_000_000) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_split_full_state () =
  (* The child is seeded with the parent's full 64-bit output — the
     pre-fix version dropped the sign bit through Int64.to_int — and
     the split consumes exactly one parent draw. *)
  let a = Rng.create ~seed:7 in
  let probe = Rng.create ~seed:7 in
  let parent_out = Rng.bits64 probe in
  let child = Rng.split a in
  let expect = Rng.of_state parent_out in
  for _ = 1 to 10 do
    check Alcotest.int64 "child stream = of_state (parent output)"
      (Rng.bits64 expect) (Rng.bits64 child)
  done;
  for _ = 1 to 10 do
    check Alcotest.int64 "parent advanced exactly one draw" (Rng.bits64 probe)
      (Rng.bits64 a)
  done

(* A bound of 3*2^60 leaves remainder 2^60 against the raw 62-bit draw:
   plain [mod] reduction would land twice as often in the lowest 2^60
   values (expected buckets ~[1500; 750; 750] of 3000). Rejection
   sampling must be flat. *)
let test_rng_int_no_modulo_bias () =
  let bound = 3 * (1 lsl 60) in
  let rng = Rng.create ~seed:13 in
  let counts = Array.make 3 0 in
  let n = 3000 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    counts.(v / (1 lsl 60)) <- counts.(v / (1 lsl 60)) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "bucket %d: %d within 15%% of n/3" i c)
        true
        (c > 850 && c < 1150))
    counts

let prop_rng_int_uniform_chi2 =
  QCheck.Test.make ~name:"Rng.int chi-square uniformity over 10 buckets"
    ~count:20 QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      let buckets = Array.make 10 0 in
      let n = 10_000 in
      for _ = 1 to n do
        let v = Rng.int rng 10 in
        buckets.(v) <- buckets.(v) + 1
      done;
      let expected = float_of_int n /. 10.0 in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 buckets
      in
      (* 9 degrees of freedom: p=0.999 critical value is 27.9; 40 keeps
         the deterministic seeds comfortably clear of flakiness while
         still damning any systematic bias. *)
      chi2 < 40.0)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean within 5%" true (mean > 4.75 && mean < 5.25)

(* --- Ewma / Stats / Series ------------------------------------------ *)

let test_ewma () =
  let e = Tpp_util.Ewma.create ~alpha:0.5 in
  check (Alcotest.float 1e-9) "empty" 0.0 (Tpp_util.Ewma.value e);
  Tpp_util.Ewma.update e 10.0;
  check (Alcotest.float 1e-9) "first sample taken whole" 10.0 (Tpp_util.Ewma.value e);
  Tpp_util.Ewma.update e 20.0;
  check (Alcotest.float 1e-9) "smoothed" 15.0 (Tpp_util.Ewma.value e);
  Tpp_util.Ewma.reset e;
  check (Alcotest.float 1e-9) "reset" 0.0 (Tpp_util.Ewma.value e)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 4.0; 2.0; 8.0; 6.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 8.0 (Stats.max s);
  check (Alcotest.float 1e-6) "stddev" 2.581989 (Stats.stddev s);
  check (Alcotest.float 1e-9) "p50" 4.0 (Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "p100" 8.0 (Stats.percentile s 100.0)

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let v = Stats.percentile s p in
      v >= Stats.min s && v <= Stats.max s)

let test_series () =
  let s = Series.create ~name:"q" in
  Series.add s ~time:0 1.0;
  Series.add s ~time:(Time_ns.ms 5) 2.0;
  Series.add s ~time:(Time_ns.ms 15) 4.0;
  check Alcotest.int "length" 3 (Series.length s);
  check (Alcotest.option (Alcotest.float 1e-9)) "value_at step" (Some 2.0)
    (Series.value_at s (Time_ns.ms 10));
  check (Alcotest.option (Alcotest.float 1e-9)) "before first" None
    (Series.value_at s (-1));
  let rows = Series.downsample s ~bucket:(Time_ns.ms 10) in
  check Alcotest.int "two buckets" 2 (Array.length rows);
  check (Alcotest.float 1e-9) "bucket mean" 1.5 (snd rows.(0));
  check (Alcotest.float 1e-9) "second bucket" 4.0 (snd rows.(1))

let test_rng_pareto_properties () =
  let rng = Rng.create ~seed:5 in
  let shape = 1.5 and scale = 20_000.0 in
  let n = 20_000 in
  let sum = ref 0.0 and below_scale = ref 0 in
  for _ = 1 to n do
    let x = Rng.pareto rng ~shape ~scale in
    sum := !sum +. x;
    if x < scale then incr below_scale
  done;
  check Alcotest.int "scale is the minimum" 0 !below_scale;
  (* Mean = scale * shape / (shape - 1) = 60k; heavy tail -> generous box. *)
  let mean = !sum /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "mean %.0f in [50k, 75k]" mean) true
    (mean > 50_000.0 && mean < 75_000.0)

let test_series_print_table () =
  let s1 = Series.create ~name:"a" and s2 = Series.create ~name:"b" in
  Series.add s1 ~time:0 1.0;
  Series.add s1 ~time:(Time_ns.sec 1) 2.0;
  Series.add s2 ~time:(Time_ns.sec 1) 5.0;
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  Series.print_table ~out [ s1; s2 ] ~bucket:(Time_ns.sec 1);
  Format.pp_print_flush out ();
  let rendered = Buffer.contents buf in
  let lines = String.split_on_char '\n' rendered in
  check Alcotest.int "header + two rows (+ trailing)" 4 (List.length lines);
  check Alcotest.bool "step-hold fills missing buckets" true
    (match lines with
    | [ _; first; _; _ ] ->
      (* b has no sample in bucket 0: prints 0. *)
      String.length first > 0
    | _ -> false)

let test_series_downsample_validation () =
  let s = Series.create ~name:"x" in
  Alcotest.check_raises "bucket must be positive"
    (Invalid_argument "Series.downsample: bucket") (fun () ->
      ignore (Series.downsample s ~bucket:0))

let test_heap_clear () =
  let h = Tpp_util.Heap.create () in
  Tpp_util.Heap.push h ~prio:1 1;
  Tpp_util.Heap.clear h;
  check Alcotest.bool "empty" true (Tpp_util.Heap.is_empty h);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "pop none" None
    (Tpp_util.Heap.pop h)

let test_stats_empty_safe () =
  let s = Stats.create () in
  (* Sums over nothing are well-defined (0.0); extrema and percentiles
     are not — they answer nan rather than fabricating a sample. *)
  check (Alcotest.float 0.0) "mean" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "stddev" 0.0 (Stats.stddev s);
  check Alcotest.bool "p99 is nan" true (Float.is_nan (Stats.percentile s 99.0));
  check Alcotest.bool "min is nan" true (Float.is_nan (Stats.min s));
  check Alcotest.bool "max is nan" true (Float.is_nan (Stats.max s))

(* --- Spsc ----------------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create () in
  check (Alcotest.option Alcotest.int) "empty" None (Spsc.pop q);
  List.iter (Spsc.push q) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "first" (Some 1) (Spsc.pop q);
  Spsc.push q 4;
  check (Alcotest.list Alcotest.int) "drain keeps order" [ 2; 3; 4 ]
    (Spsc.drain q);
  check (Alcotest.option Alcotest.int) "drained" None (Spsc.pop q)

let test_spsc_bounded () =
  (* Capacity rounds up to a power of two; a full ring refuses pushes
     until a pop frees a slot, and [push] raises rather than dropping. *)
  let q = Spsc.create ~capacity:3 () in
  check Alcotest.int "rounded capacity" 4 (Spsc.capacity q);
  for i = 1 to 4 do
    check Alcotest.bool "accepts while room" true (Spsc.try_push q i)
  done;
  check Alcotest.bool "refuses when full" false (Spsc.try_push q 5);
  check Alcotest.bool "push raises when full" true
    (match Spsc.push q 5 with exception Spsc.Full -> true | () -> false);
  check Alcotest.int "length" 4 (Spsc.length q);
  check (Alcotest.option Alcotest.int) "fifo head" (Some 1) (Spsc.pop q);
  check Alcotest.bool "room again" true (Spsc.try_push q 5);
  check (Alcotest.list Alcotest.int) "wraps in order" [ 2; 3; 4; 5 ]
    (Spsc.drain q)

let test_spsc_cross_domain () =
  (* Producer on its own domain, consumer here: everything pushed must
     come out exactly once, in order. The ring is much smaller than the
     stream, so the producer exercises the full/retry path and every
     index wraps the ring many times. *)
  let q = Spsc.create ~capacity:16 () in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 in
  let expect = ref 1 in
  while !got < n do
    match Spsc.pop q with
    | Some v ->
      check Alcotest.int "in order" !expect v;
      incr expect;
      incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check (Alcotest.option Alcotest.int) "nothing extra" None (Spsc.pop q)

(* --- Partition ------------------------------------------------------ *)

(* An even ring: optimal bisection is two arcs with a cut of 2. *)
let ring n = List.init n (fun i -> (i, (i + 1) mod n, 1))

let test_partition_ring () =
  let g = Partition.make_graph ~n:8 ~edges:(ring 8) ~weight:(Array.make 8 1) in
  let assign = Partition.partition g ~parts:2 in
  let size p = Array.fold_left (fun a x -> if x = p then a + 1 else a) 0 assign in
  check Alcotest.int "balanced" 4 (size 0);
  check Alcotest.int "balanced" 4 (size 1);
  check Alcotest.int "minimal cut" 2 (Partition.cut_weight g assign)

let test_partition_determinism_and_bounds () =
  let edges = ring 9 @ [ (0, 4, 3); (2, 7, 2) ] in
  let weight = Array.init 9 (fun i -> 1 + (i mod 3)) in
  let g = Partition.make_graph ~n:9 ~edges ~weight in
  let a1 = Partition.partition g ~parts:3 in
  let a2 = Partition.partition g ~parts:3 in
  check (Alcotest.array Alcotest.int) "deterministic" a1 a2;
  Array.iter (fun p -> check Alcotest.bool "in range" true (p >= 0 && p < 3)) a1;
  for p = 0 to 2 do
    check Alcotest.bool "no empty part" true (Array.exists (( = ) p) a1)
  done

let test_partition_degenerate () =
  let g = Partition.make_graph ~n:3 ~edges:[ (0, 1, 1) ] ~weight:(Array.make 3 1) in
  check (Alcotest.array Alcotest.int) "one part" [| 0; 0; 0 |]
    (Partition.partition g ~parts:1);
  check (Alcotest.array Alcotest.int) "parts >= n: one vertex each"
    [| 0; 1; 2 |]
    (Partition.partition g ~parts:5);
  Alcotest.check_raises "parts < 1"
    (Invalid_argument "Partition.partition: parts must be >= 1") (fun () ->
      ignore (Partition.partition g ~parts:0))

let suite =
  [
    Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "time pp" `Quick test_time_pp;
    Alcotest.test_case "buf roundtrip" `Quick test_buf_roundtrip;
    Alcotest.test_case "buf growth" `Quick test_buf_growth;
    Alcotest.test_case "buf out-of-bounds" `Quick test_buf_oob;
    Alcotest.test_case "buf window" `Quick test_buf_window;
    qtest prop_buf_u32_roundtrip;
    Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap FIFO ties" `Quick test_heap_fifo_ties;
    qtest prop_heap_sorts;
    qtest prop_heap_model;
    Alcotest.test_case "heap pop releases value" `Quick test_heap_pop_releases;
    Alcotest.test_case "heap clear releases values" `Quick test_heap_clear_releases;
    Alcotest.test_case "heap allocation-free accessors" `Quick
      test_heap_alloc_free_accessors;
    Alcotest.test_case "wheel order" `Quick test_wheel_order;
    Alcotest.test_case "wheel FIFO ties" `Quick test_wheel_fifo_ties;
    Alcotest.test_case "wheel overflow horizon" `Quick test_wheel_overflow_horizon;
    Alcotest.test_case "wheel level rollover" `Quick test_wheel_level_rollover;
    Alcotest.test_case "wheel rejects the past" `Quick test_wheel_rejects_past;
    Alcotest.test_case "wheel clear" `Quick test_wheel_clear;
    qtest prop_wheel_matches_heap;
    Alcotest.test_case "heap backdated ties" `Quick test_heap_backdated_ties;
    Alcotest.test_case "wheel backdated ties" `Quick test_wheel_backdated_ties;
    qtest prop_wheel_matches_heap_backdated;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng split uses full state" `Quick test_rng_split_full_state;
    Alcotest.test_case "rng int has no modulo bias" `Quick
      test_rng_int_no_modulo_bias;
    qtest prop_rng_int_uniform_chi2;
    qtest prop_rng_int_bounds;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "ewma" `Quick test_ewma;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    qtest prop_stats_percentile_bounds;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "rng pareto" `Quick test_rng_pareto_properties;
    Alcotest.test_case "series print table" `Quick test_series_print_table;
    Alcotest.test_case "series downsample validation" `Quick
      test_series_downsample_validation;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    Alcotest.test_case "stats empty" `Quick test_stats_empty_safe;
    Alcotest.test_case "spsc fifo" `Quick test_spsc_fifo;
    Alcotest.test_case "spsc bounded" `Quick test_spsc_bounded;
    Alcotest.test_case "spsc cross-domain" `Quick test_spsc_cross_domain;
    Alcotest.test_case "partition ring" `Quick test_partition_ring;
    Alcotest.test_case "partition deterministic" `Quick
      test_partition_determinism_and_bounds;
    Alcotest.test_case "partition degenerate" `Quick test_partition_degenerate;
  ]
