(* Adversarial/property fuzzing: random TPP programs must never corrupt
   protected switch state or crash the TCPU; random bytes must never
   crash the frame parser; random frames must round-trip. *)

open Tpp
module State = Tpp_asic.State
module AsicTcpu = Tpp_asic.Tcpu

let qtest = QCheck_alcotest.to_alcotest

let operand_gen =
  QCheck.Gen.(
    frequency
      [
        (* Bias toward interesting (mapped, small) addresses. *)
        (3, map (fun v -> Instr.Sw v) (int_bound 0x20));
        (2, map (fun v -> Instr.Sw (0x100 + v)) (int_bound 0x10));
        (2, map (fun v -> Instr.Sw (0x880 + v)) (int_bound 0x40));
        (2, map (fun v -> Instr.Sw v) (int_bound 0xFFF));
        (3, map (fun v -> Instr.Pkt (4 * v)) (int_bound 0x40));
        (1, map (fun v -> Instr.Pkt v) (int_bound 0xFFF));
        (2, map (fun v -> Instr.Imm v) (int_bound 0xFFF));
        (2, map (fun v -> Instr.Hop v) (int_bound 0x10));
      ])

let binop_gen =
  QCheck.Gen.oneofl [ Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Min; Instr.Max ]

let instr_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Instr.Nop);
        (1, return Instr.Halt);
        (4, map (fun a -> Instr.Push a) operand_gen);
        (2, map (fun a -> Instr.Pop a) operand_gen);
        (3, map2 (fun a b -> Instr.Load (a, b)) operand_gen operand_gen);
        (3, map2 (fun a b -> Instr.Store (a, b)) operand_gen operand_gen);
        (2, map2 (fun a b -> Instr.Mov (a, b)) operand_gen operand_gen);
        (2, map3 (fun op a b -> Instr.Binop (op, a, b)) binop_gen operand_gen operand_gen);
        (2, map2 (fun a b -> Instr.Cstore (a, b)) operand_gen operand_gen);
        (2, map2 (fun a b -> Instr.Cexec (a, b)) operand_gen operand_gen);
      ])

let program_gen = QCheck.Gen.(list_size (0 -- 12) instr_gen)

let program_arbitrary =
  QCheck.make
    ~print:(fun p ->
      String.concat "\n" (List.map (Format.asprintf "%a" Instr.pp) p))
    program_gen

(* Snapshot of everything a TPP must NOT be able to change. *)
let protected_snapshot st =
  ( st.State.switch_id,
    st.State.version,
    st.State.packets_seen,
    st.State.bytes_seen,
    st.State.drops,
    Array.map
      (fun p ->
        ( p.State.Port.rx_bytes, p.State.Port.tx_bytes, p.State.Port.drops,
          p.State.Port.queue_bytes, p.State.Port.capacity_bps ))
      st.State.ports )

let run_random_program ?(hop_mode = false) program =
  let st = State.create ~switch_id:3 ~num_ports:4 () in
  State.force_queue_depth st ~port:2 ~bytes:777;
  st.State.packets_seen <- 42;
  let tpp =
    if hop_mode then
      Prog.make ~addr_mode:Prog.Hop_addressed ~perhop_len:16 ~program ~mem_len:64 ()
    else Prog.make ~program ~mem_len:64 ()
  in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 2;
  let before = protected_snapshot st in
  let result = AsicTcpu.execute st ~now:123 ~frame in
  (st, before, result, Option.get frame.Frame.tpp)

let prop_tcpu_never_corrupts_protected_state =
  QCheck.Test.make ~name:"random programs cannot touch protected state" ~count:500
    program_arbitrary
    (fun program ->
      let st, before, _, _ = run_random_program program in
      (* tpp counters legitimately move; everything else must not. *)
      protected_snapshot st = before)

let prop_tcpu_total =
  QCheck.Test.make ~name:"random programs always terminate with a result" ~count:500
    program_arbitrary
    (fun program ->
      let _, _, result, tpp = run_random_program program in
      match result with
      | Some r ->
        r.Tpp_asic.Tcpu.executed <= List.length program
        && r.Tpp_asic.Tcpu.cycles = Tpp_asic.Tcpu.cycles_for r.Tpp_asic.Tcpu.executed
        && tpp.Prog.hop = 1
      | None -> false)

let prop_tcpu_hop_mode_total =
  QCheck.Test.make ~name:"random hop-mode programs terminate" ~count:300
    program_arbitrary
    (fun program ->
      let _, before, _, _ = run_random_program ~hop_mode:true program in
      let st, before', _, _ = run_random_program ~hop_mode:true program in
      ignore before;
      protected_snapshot st = before')

let prop_faults_set_flag =
  QCheck.Test.make ~name:"a fault always raises the TPP flag and counter" ~count:500
    program_arbitrary
    (fun program ->
      let st, _, result, tpp = run_random_program program in
      match result with
      | Some { Tpp_asic.Tcpu.fault = Some _; _ } ->
        tpp.Prog.faulted && st.State.tpp_faults = 1
      | Some { Tpp_asic.Tcpu.fault = None; _ } ->
        (not tpp.Prog.faulted) && st.State.tpp_faults = 0
      | None -> false)

(* --- frame parser fuzz ----------------------------------------------------- *)

let prop_parser_never_crashes_on_garbage =
  QCheck.Test.make ~name:"frame parser is total on random bytes" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Frame.parse (Bytes.of_string s) with Ok _ | Error _ -> true)

let prop_parser_never_crashes_on_mutated_frames =
  (* Start from a valid TPP frame and flip one byte anywhere. *)
  let base =
    let tpp =
      Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Switch:SwitchID]\nHALT\n")
    in
    Frame.serialize
      (Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
         ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
         ~src_port:1 ~dst_port:2 ~tpp ~payload:(Bytes.create 16) ())
  in
  QCheck.Test.make ~name:"one-byte mutations never crash the parser" ~count:1000
    QCheck.(pair (int_bound (Bytes.length base - 1)) (int_bound 255))
    (fun (pos, value) ->
      let mutated = Bytes.copy base in
      Bytes.set_uint8 mutated pos value;
      match Frame.parse mutated with Ok _ | Error _ -> true)

let prop_random_udp_frames_roundtrip =
  QCheck.Test.make ~name:"random UDP frames round-trip through bytes" ~count:300
    QCheck.(quad (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFFFF)
              (string_of_size Gen.(0 -- 100)))
    (fun (sport, dport, ip, payload) ->
      let frame =
        Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
          ~src_ip:(Ipv4.Addr.of_int ip) ~dst_ip:(Ipv4.Addr.of_host_id 2)
          ~src_port:sport ~dst_port:dport ~payload:(Bytes.of_string payload) ()
      in
      match Frame.parse (Frame.serialize frame) with
      | Ok got ->
        Frame.eth got = Frame.eth frame
        && Frame.ip got = Frame.ip frame
        && Frame.udp got = Frame.udp frame
        && Bytes.equal (Frame.payload got) (Frame.payload frame)
      | Error _ -> false)

(* --- whole-dataplane fuzz over random topologies ---------------------------- *)

let prop_random_topology_routes_everything =
  let gen =
    QCheck.Gen.(
      tup4 (int_range 1 8) (int_range 2 12) (int_range 0 8) (int_range 0 10_000))
  in
  QCheck.Test.make ~name:"random topologies: every host pair delivers, TPPs agree \
                          with the control path" ~count:25
    (QCheck.make gen)
    (fun (switches, hosts, extra_links, seed) ->
      let eng = Engine.create () in
      let topo =
        Topology.random eng ~switches ~hosts ~extra_links ~seed ~bps:100_000_000
          ~delay:1_000 ()
      in
      let net = topo.Topology.r_net in
      let hs = topo.Topology.r_hosts in
      let received = ref [] in
      Array.iteri
        (fun i h ->
          h.Net.receive <- (fun ~now:_ frame ->
              match frame.Frame.tpp with
              | Some tpp -> received := (i, tpp.Prog.hop) :: !received
              | None -> ()))
        hs;
      let n = Array.length hs in
      let expectations =
        List.init n (fun i ->
            let j = (i + 1 + (seed mod (n - 1))) mod n in
            let tpp =
              Result.get_ok (Tpp_isa.Programs.build ~max_hops:(switches + 2)
                               Tpp_isa.Programs.queue_snapshot)
            in
            let frame =
              Frame.udp_frame ~src_mac:hs.(i).Net.mac ~dst_mac:hs.(j).Net.mac
                ~src_ip:hs.(i).Net.ip ~dst_ip:hs.(j).Net.ip ~src_port:(100 + i)
                ~dst_port:200 ~tpp ~payload:Bytes.empty ()
            in
            Net.host_send net hs.(i) frame;
            let expected_hops =
              List.length
                (Verify.control_path ~src_port:(100 + i) ~dst_port:200 net
                   ~src:hs.(i) ~dst:hs.(j))
            in
            (j, expected_hops))
      in
      Engine.run eng ~until:1_000_000_000;
      List.for_all
        (fun (dst, expected_hops) ->
          List.exists
            (fun (got_dst, got_hops) -> got_dst = dst && got_hops = expected_hops)
            !received)
        expectations)

let prop_switch_conserves_packets =
  (* Conservation through a single switch: everything offered to a port
     is either still queued, transmitted, or counted as dropped. *)
  let gen = QCheck.Gen.(pair (int_range 1 120) (int_range 1 10)) in
  QCheck.Test.make ~name:"switch conserves packets (queued+tx+dropped = offered)"
    ~count:100 (QCheck.make gen)
    (fun (pkts, limit_frames) ->
      let sw = Switch.create ~id:1 ~num_ports:2 () in
      let dst = Ipv4.Addr.of_host_id 2 in
      Switch.install_route sw (Ipv4.Prefix.host dst) ~port:1 ~entry_id:1 ~version:1;
      let frame () =
        Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
          ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:dst ~src_port:1 ~dst_port:2
          ~payload:(Bytes.create 100) ()
      in
      let wire = Frame.wire_size (frame ()) in
      Switch.set_queue_limit sw ~port:1 ~bytes:(limit_frames * wire);
      let queued = ref 0 and dropped = ref 0 in
      for _ = 1 to pkts do
        match Switch.handle_ingress sw ~now:0 ~in_port:0 (frame ()) with
        | Switch.Queued _ -> incr queued
        | Switch.Dropped _ -> incr dropped
      done;
      (* Drain half, then check the books. *)
      let drained = ref 0 in
      for _ = 1 to pkts / 2 do
        match Switch.dequeue sw ~port:1 with Some _ -> incr drained | None -> ()
      done;
      let st = Switch.state sw in
      let in_queue = Switch.queue_packets sw ~port:1 in
      !queued + !dropped = pkts
      && !drained + in_queue = !queued
      && Tpp_asic.State.port_stat st ~port:1 Vaddr.Port_stat.Drops = !dropped
      && Tpp_asic.State.port_stat st ~port:1 Vaddr.Port_stat.Tx_pkts = !drained
      && Switch.queue_bytes sw ~port:1 = in_queue * wire)

(* --- model-based test of multi-queue enqueue/dequeue ------------------------ *)

(* An independent, obviously-correct model of the egress stage: FIFO
   lists per queue, tail drop per queue, strict priority service. The
   real switch must agree action for action. *)
module Queue_model = struct
  type t = { queues : int list array; mutable limits : int }

  let create ~num_queues ~limit = { queues = Array.make num_queues []; limits = limit }

  let enqueue t ~queue ~wire ~id =
    let q_bytes = List.length t.queues.(queue) * wire in
    if q_bytes + wire > t.limits then false
    else begin
      t.queues.(queue) <- t.queues.(queue) @ [ id ];
      true
    end

  let dequeue t =
    let rec scan qi =
      if qi < 0 then None
      else
        match t.queues.(qi) with
        | id :: rest ->
          t.queues.(qi) <- rest;
          Some id
        | [] -> scan (qi - 1)
    in
    scan (Array.length t.queues - 1)
end

let prop_scheduler_matches_model =
  (* Random interleavings of enqueues (random DSCP) and dequeues on a
     2..4-queue port must match the model decision for decision. Equal
     frame sizes keep the byte accounting identical on both sides. *)
  let gen =
    QCheck.Gen.(
      triple (int_range 1 4) (int_range 2 12)
        (list_size (10 -- 80) (pair bool (int_bound 63))))
  in
  QCheck.Test.make ~name:"multi-queue engine agrees with a simple model" ~count:100
    (QCheck.make gen)
    (fun (num_queues, limit_frames, ops) ->
      let sw = Switch.create ~id:1 ~num_ports:2 () in
      let dst = Ipv4.Addr.of_host_id 2 in
      Switch.install_route sw (Ipv4.Prefix.host dst) ~port:1 ~entry_id:1 ~version:1;
      Switch.configure_queues sw ~port:1 ~count:num_queues;
      let frame dscp =
        let f =
          Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
            ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:dst ~src_port:1 ~dst_port:2
            ~payload:(Bytes.create 100) ()
        in
        Frame.set_ip_dscp f dscp;
        f
      in
      let wire = Frame.wire_size (frame 0) in
      Switch.set_queue_limit sw ~port:1 ~bytes:(limit_frames * wire);
      let model = Queue_model.create ~num_queues ~limit:(limit_frames * wire) in
      List.for_all
        (fun (is_dequeue, dscp) ->
          if is_dequeue then begin
            let got = Switch.dequeue sw ~port:1 in
            let want = Queue_model.dequeue model in
            Option.map (fun f -> f.Frame.id) got = want
          end
          else begin
            let f = frame dscp in
            let queue = min (num_queues - 1) (dscp * num_queues / 64) in
            let want = Queue_model.enqueue model ~queue ~wire ~id:f.Frame.id in
            match Switch.handle_ingress sw ~now:0 ~in_port:0 f with
            | Switch.Queued _ -> want
            | Switch.Dropped _ -> not want
          end)
        ops)

let prop_assembler_never_crashes =
  (* Random text must yield Ok or Error, never an exception. *)
  QCheck.Test.make ~name:"assembler is total on random text" ~count:500
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s -> match Asm.assemble s with Ok _ | Error _ -> true)

let suite =
  [
    qtest prop_tcpu_never_corrupts_protected_state;
    qtest prop_tcpu_total;
    qtest prop_tcpu_hop_mode_total;
    qtest prop_faults_set_flag;
    qtest prop_parser_never_crashes_on_garbage;
    qtest prop_parser_never_crashes_on_mutated_frames;
    qtest prop_random_udp_frames_roundtrip;
    qtest prop_random_topology_routes_everything;
    qtest prop_switch_conserves_packets;
    qtest prop_scheduler_matches_model;
    qtest prop_assembler_never_crashes;
  ]
