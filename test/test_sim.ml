(* Simulator tests: the event engine, link timing, delivery through
   switches, topology builders and route installation. *)

open Tpp

let check = Alcotest.check

(* --- Engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng 30 (fun () -> log := 30 :: !log);
  Engine.at eng 10 (fun () -> log := 10 :: !log);
  Engine.at eng 20 (fun () -> log := 20 :: !log);
  Engine.run eng ~until:100;
  check (Alcotest.list Alcotest.int) "time order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock advanced to until" 100 (Engine.now eng);
  check Alcotest.int "events counted" 3 (Engine.events_processed eng)

let test_engine_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  List.iter (fun i -> Engine.at eng 5 (fun () -> log := i :: !log)) [ 1; 2; 3 ];
  Engine.run eng ~until:10;
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !log)

let test_engine_no_past_scheduling () =
  let eng = Engine.create () in
  Engine.at eng 50 (fun () -> ());
  Engine.run eng ~until:100;
  Alcotest.check_raises "past" (Invalid_argument "Engine.at: scheduling in the past")
    (fun () -> Engine.at eng 50 (fun () -> ()))

let test_engine_nested_scheduling () =
  let eng = Engine.create () in
  let fired = ref 0 in
  Engine.at eng 10 (fun () ->
      Engine.after eng 5 (fun () -> fired := Engine.now eng));
  Engine.run eng ~until:100;
  check Alcotest.int "nested event at 15" 15 !fired

let test_engine_every () =
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.every eng ~period:10 ~until:55 (fun () -> incr count);
  Engine.run eng ~until:100;
  check Alcotest.int "five periods fit before 55" 5 !count

let test_engine_every_past_start () =
  let eng = Engine.create () in
  Engine.at eng 10 (fun () -> ());
  Engine.run eng ~until:50;
  let expect_raise start =
    Alcotest.check_raises "every start rejected"
      (Invalid_argument "Engine.every: start in the past") (fun () ->
        Engine.every eng ~start ~period:10 ~until:200 (fun () -> ()))
  in
  expect_raise 20;
  (* strictly before the clock *)
  expect_raise 50;
  (* exactly at the clock is also rejected *)
  let fired = ref 0 in
  Engine.every eng ~start:60 ~period:10 ~until:80 (fun () -> incr fired);
  Engine.run eng ~until:100;
  check Alcotest.int "future start fires" 3 !fired

let test_engine_next_event_time () =
  let eng = Engine.create () in
  check (Alcotest.option Alcotest.int) "empty" None (Engine.next_event_time eng);
  Engine.at eng 42 (fun () -> ());
  Engine.at eng 17 (fun () -> ());
  check (Alcotest.option Alcotest.int) "min pending" (Some 17)
    (Engine.next_event_time eng);
  Engine.run eng ~until:30;
  check (Alcotest.option Alcotest.int) "after partial run" (Some 42)
    (Engine.next_event_time eng)

let test_engine_run_until_is_exclusive_of_later_events () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.at eng 100 (fun () -> fired := true);
  Engine.run eng ~until:50;
  check Alcotest.bool "not yet" false !fired;
  Engine.run eng ~until:150;
  check Alcotest.bool "then fires" true !fired

(* An event at max_int must be a real event, not an empty-queue
   sentinel: the run loop tests emptiness explicitly. Both schedulers. *)
let test_engine_max_int_event () =
  List.iter
    (fun scheduler ->
      let eng = Engine.create ~scheduler () in
      let fired = ref false in
      Engine.at eng max_int (fun () -> fired := true);
      Engine.run eng ~until:(max_int - 1);
      check Alcotest.bool "not an empty-queue sentinel" false !fired;
      check
        (Alcotest.option Alcotest.int)
        "still queued" (Some max_int)
        (Engine.next_event_time eng);
      Engine.run eng ~until:max_int;
      check Alcotest.bool "fires at the end of time" true !fired)
    [ `Wheel; `Heap ]

(* Typed events round-trip through the slab: payload ints and the frame
   come back through the handlers record. Same-timestamp events fire in
   the canonical (kind, node, port) tie order — thunks, then deliveries,
   then dequeues — not push order (DESIGN.md §11). *)
let test_engine_typed_dispatch () =
  let eng = Engine.create () in
  let log = ref [] in
  let h =
    {
      Engine.on_deliver =
        (fun ~node ~port frame ->
          log := ("deliver", node, port, Frame.payload_len frame) :: !log);
      on_dequeue = (fun ~node ~port -> log := ("dequeue", node, port, 0) :: !log);
      on_restart = (fun ~node -> log := ("restart", node, 0, 0) :: !log);
    }
  in
  let frame =
    Frame.udp_frame ~src_mac:(Tpp_packet.Mac.of_host_id 1)
      ~dst_mac:(Tpp_packet.Mac.of_host_id 2)
      ~src_ip:(Tpp_packet.Ipv4.Addr.of_host_id 1)
      ~dst_ip:(Tpp_packet.Ipv4.Addr.of_host_id 2) ~src_port:1 ~dst_port:2
      ~payload:(Bytes.create 7) ()
  in
  Engine.dequeue_at eng 10 h ~node:3 ~port:1;
  Engine.deliver_at eng 10 h ~node:4 ~port:0 frame;
  Engine.at eng 10 (fun () -> log := ("thunk", 0, 0, 0) :: !log);
  Engine.restart_at eng 20 h ~node:9;
  Engine.schedule eng ~at:30 h (Engine.Port_dequeue (5, 2));
  Engine.run eng ~until:100;
  check
    (Alcotest.list
       (Alcotest.pair
          (Alcotest.pair Alcotest.string Alcotest.int)
          (Alcotest.pair Alcotest.int Alcotest.int)))
    "typed dispatch order"
    [
      (("thunk", 0), (0, 0));
      (("deliver", 4), (0, 7));
      (("dequeue", 3), (1, 0));
      (("restart", 9), (0, 0));
      (("dequeue", 5), (2, 0));
    ]
    (List.rev_map (fun (k, a, b, c) -> ((k, a), (b, c))) !log);
  check Alcotest.int "all five processed" 5 (Engine.events_processed eng)

(* --- Net timing ------------------------------------------------------------ *)

(* One switch between two hosts; both links 100 Mb/s, 1 ms propagation. *)
let two_hosts ?wire_check () =
  let eng = Engine.create () in
  let net = Net.create ?wire_check eng in
  let sw = Switch.create ~id:1 ~num_ports:2 () in
  let sw_id = Net.add_switch net sw in
  let a = Net.add_host net ~name:"a" in
  let b = Net.add_host net ~name:"b" in
  Net.connect net (a.Net.node_id, 0) (sw_id, 0) ~bps:100_000_000 ~delay:(Time_ns.ms 1);
  Net.connect net (b.Net.node_id, 0) (sw_id, 1) ~bps:100_000_000 ~delay:(Time_ns.ms 1);
  Topology.install_routes net;
  (eng, net, a, b)

let test_delivery_and_latency () =
  let eng, net, a, b = two_hosts () in
  let arrival = ref (-1) in
  b.Net.receive <- (fun ~now _ -> arrival := now);
  let frame =
    Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
      ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:(Bytes.create 954) ()
  in
  let wire = Frame.wire_size frame in
  check Alcotest.int "1000B on the wire" 1000 wire;
  Net.host_send net a frame;
  Engine.run eng ~until:(Time_ns.ms 10);
  (* Two store-and-forward hops: 2 x (80us serialisation + 1ms delay). *)
  check Alcotest.int "latency" (2 * (80_000 + 1_000_000)) !arrival;
  check Alcotest.int "delivered counter" 1 (Net.frames_delivered net)

let test_fifo_no_reordering () =
  let eng, net, a, b = two_hosts () in
  let seen = ref [] in
  b.Net.receive <- (fun ~now:_ frame ->
      seen := Frame.payload_u32 frame 0 :: !seen);
  for i = 1 to 50 do
    let payload = Bytes.create 100 in
    Tpp_util.Buf.set_u32i payload 0 i;
    let frame =
      Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
        ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload ()
    in
    Net.host_send net a frame
  done;
  Engine.run eng ~until:(Time_ns.sec 1);
  check (Alcotest.list Alcotest.int) "in order" (List.init 50 (fun i -> i + 1))
    (List.rev !seen);
  check Alcotest.int "all delivered" 50 (Net.frames_delivered net)

(* The same traffic must produce a bit-identical simulation whatever
   the scheduler (wheel vs heap oracle) and event representation (typed
   slab vs closures): same arrival timestamps, same delivery and event
   counts. 50 frames through a store-and-forward switch give plenty of
   same-timestamp ties to disagree on. *)
let test_scheduler_and_event_mode_identity () =
  let run ~scheduler ~event_mode =
    let eng = Engine.create ~scheduler () in
    let net = Net.create ~event_mode eng in
    let sw = Switch.create ~id:1 ~num_ports:2 () in
    let sw_id = Net.add_switch net sw in
    let a = Net.add_host net ~name:"a" in
    let b = Net.add_host net ~name:"b" in
    Net.connect net (a.Net.node_id, 0) (sw_id, 0) ~bps:100_000_000
      ~delay:(Time_ns.ms 1);
    Net.connect net (b.Net.node_id, 0) (sw_id, 1) ~bps:100_000_000
      ~delay:(Time_ns.ms 1);
    Topology.install_routes net;
    let arrivals = ref [] in
    b.Net.receive <- (fun ~now _ -> arrivals := now :: !arrivals);
    for i = 1 to 50 do
      let payload = Bytes.create (60 + (i mod 7)) in
      let frame =
        Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
          ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload ()
      in
      Net.host_send net a frame
    done;
    Engine.run eng ~until:(Time_ns.sec 1);
    (List.rev !arrivals, Net.frames_delivered net, Engine.events_processed eng)
  in
  let reference = run ~scheduler:`Heap ~event_mode:`Closure in
  List.iter
    (fun (scheduler, event_mode, label) ->
      let got = run ~scheduler ~event_mode in
      check
        (Alcotest.triple
           (Alcotest.list Alcotest.int)
           Alcotest.int Alcotest.int)
        label reference got)
    [
      (`Wheel, `Typed, "wheel+typed == heap+closure");
      (`Heap, `Typed, "heap+typed == heap+closure");
      (`Wheel, `Closure, "wheel+closure == heap+closure");
    ]

let test_wire_check_exercised () =
  (* host_send serialises and reparses; a frame that round-trips fine
     must arrive, and the parse error path is covered by test_isa. *)
  let eng, net, a, b = two_hosts () in
  let got_tpp = ref false in
  b.Net.receive <- (fun ~now:_ frame -> got_tpp := Option.is_some frame.Frame.tpp);
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 "PUSH [Switch:SwitchID]\n") in
  let frame =
    Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
      ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  Net.host_send net a frame;
  Engine.run eng ~until:(Time_ns.ms 10);
  check Alcotest.bool "TPP survived the wire" true !got_tpp

(* A frame whose headers cannot round-trip (IPv4 ethertype announced but
   the IP header ripped out, so the wire image truncates) must be
   rejected at the NIC in [`Always] mode — the default, so the cache
   never weakens test-time checking — and in [`Cached] mode too, since
   an unseen shape gets the full round-trip. *)
let corrupted_frame a b =
  let frame =
    Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
      ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  (* Truncate the wire image to the Ethernet header while the
     ethertype still announces IPv4: the parse must fail. *)
  frame.Frame.len <- 14;
  frame.Frame.ip_off <- -1;
  frame.Frame.udp_off <- -1;
  frame.Frame.pay_off <- 14;
  frame

let expect_wire_check_failure net a frame =
  match Net.host_send net a frame with
  | () -> Alcotest.fail "corrupted frame passed the wire check"
  | exception Failure msg ->
    check Alcotest.bool "diagnostic names the round-trip" true
      (String.length msg > 0
      && String.sub msg 0 (min 17 (String.length msg)) = "Net.host_send: fr")

let test_wire_check_always_catches_corruption () =
  let _eng, net, a, b = two_hosts () in
  expect_wire_check_failure net a (corrupted_frame a b)

let test_wire_check_cached_catches_new_shape () =
  let _eng, net, a, b = two_hosts ~wire_check:`Cached () in
  (* Warm the cache with a healthy frame of a different shape first. *)
  let ok =
    Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
      ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:(Bytes.create 8) ()
  in
  Net.host_send net a ok;
  expect_wire_check_failure net a (corrupted_frame a b)

(* The cached mode must not change what the simulation computes: same
   workload, same deliveries at the same instants as [`Always]. *)
let test_wire_check_modes_agree () =
  let run wire_check =
    let eng, net, a, b = two_hosts ~wire_check () in
    let arrivals = ref [] in
    b.Net.receive <-
      (fun ~now frame ->
        arrivals := (now, Frame.payload_len frame) :: !arrivals);
    for i = 1 to 30 do
      let frame =
        Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
          ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2
          ~payload:(Bytes.create (100 + (i mod 3)))
          ()
      in
      Net.host_send net a frame
    done;
    Engine.run eng ~until:(Time_ns.sec 1);
    (List.rev !arrivals, Net.frames_delivered net)
  in
  let always = run `Always and cached = run `Cached and off = run `Off in
  check
    (Alcotest.pair
       (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
       Alcotest.int)
    "cached = always" always cached;
  check
    (Alcotest.pair
       (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
       Alcotest.int)
    "off = always" always off

let test_deliver_hooks_in_registration_order () =
  let eng, net, a, b = two_hosts () in
  let order = ref [] in
  for i = 1 to 5 do
    Net.on_host_deliver net (fun _ _ -> order := i :: !order)
  done;
  let frame =
    Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
      ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send net a frame;
  Engine.run eng ~until:(Time_ns.ms 10);
  check (Alcotest.list Alcotest.int) "hooks fire in registration order"
    [ 1; 2; 3; 4; 5 ] (List.rev !order)

(* --- transmission time ------------------------------------------------------ *)

let test_tx_time_integer_ceiling () =
  let rates =
    [ 1_000_000; 10_000_000; 100_000_000; 1_000_000_000; 9_999_999;
      10_000_000_000; 40_000_000_000; 100_000_000_000; 400_000_000_000 ]
  in
  let sizes = [ 64; 65; 100; 999; 1000; 1234; 1500; 9000; 65535 ] in
  List.iter
    (fun bps ->
      List.iter
        (fun bytes ->
          let bits = bytes * 8 in
          let t = Net.tx_time_of_bits ~bps bits in
          let label what =
            Printf.sprintf "%s (%dB at %d bps)" what bytes bps
          in
          (* Exact ceiling of bits * 1e9 / bps. *)
          check Alcotest.bool (label "upper") true
            (t * bps >= bits * 1_000_000_000);
          check Alcotest.bool (label "tight") true
            ((t - 1) * bps < bits * 1_000_000_000);
          (* And it never drifts more than a float-rounding ns from the
             seed's float implementation. *)
          let f =
            int_of_float (ceil (float_of_int bits *. 1e9 /. float_of_int bps))
          in
          check Alcotest.bool (label "near float") true (abs (t - f) <= 1))
        sizes)
    rates

(* --- node/attachment lookup on randomized topologies ------------------------ *)

let prop_net_lookup_consistent =
  let qtest = QCheck_alcotest.to_alcotest in
  qtest
    (QCheck.Test.make ~name:"net node/attachment lookup on random topologies"
       ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let eng = Engine.create () in
         let r =
           Topology.random eng ~switches:6 ~hosts:8 ~extra_links:4 ~seed
             ~bps:1_000_000 ~delay:(Time_ns.us 10) ()
         in
         let net = r.Topology.r_net in
         let ok = ref (Net.node_count net = 6 + 8) in
         (* Node ids resolve to the exact object that was registered:
            Topology.random numbers its switch ASICs 1..n in creation
            order, so id lookup must recover that numbering. *)
         Array.iteri
           (fun i sid ->
             ok := !ok && Switch.id (Net.switch net sid) = i + 1;
             match Net.host_of net sid with
             | _ -> ok := false
             | exception Invalid_argument _ -> ())
           r.Topology.r_switch_ids;
         Array.iter
           (fun h ->
             ok := !ok && Net.host_of net h.Net.node_id == h;
             match Net.switch net h.Net.node_id with
             | _ -> ok := false
             | exception Invalid_argument _ -> ())
           r.Topology.r_hosts;
         (* switches/hosts enumerate in registration order. *)
         let sw_ids = List.map fst (Net.switches net) in
         ok := !ok && sw_ids = Array.to_list r.Topology.r_switch_ids;
         let host_ids = List.map (fun h -> h.Net.node_id) (Net.hosts net) in
         ok :=
           !ok
           && host_ids
              = Array.to_list
                  (Array.map (fun h -> h.Net.node_id) r.Topology.r_hosts);
         (* Links are symmetric, and both endpoint attachments agree. *)
         for id = 0 to Net.node_count net - 1 do
           List.iter
             (fun (port, peer, pport) ->
               ok :=
                 !ok
                 && List.exists
                      (fun (p', n', pp') -> p' = pport && n' = id && pp' = port)
                      (Net.neighbors net peer);
               ok :=
                 !ok
                 && Net.link_up net (id, port) = Net.link_up net (peer, pport))
             (Net.neighbors net id)
         done;
         (* Out-of-range ids are rejected, not silently resolved. *)
         (match Net.host_of net (Net.node_count net) with
         | _ -> ok := false
         | exception Invalid_argument _ -> ());
         !ok))

let test_connect_validation () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let sw = Net.add_switch net (Switch.create ~id:1 ~num_ports:2 ()) in
  let a = Net.add_host net ~name:"a" in
  Net.connect net (a.Net.node_id, 0) (sw, 0) ~bps:1000 ~delay:0;
  Alcotest.check_raises "double link" (Invalid_argument "Net.connect: port already linked")
    (fun () -> Net.connect net (a.Net.node_id, 0) (sw, 1) ~bps:1000 ~delay:0);
  Alcotest.check_raises "bad port" (Invalid_argument "Net: port out of range")
    (fun () -> Net.connect net (sw, 5) (sw, 1) ~bps:1000 ~delay:0)

let test_capacity_set_on_connect () =
  let eng = Engine.create () in
  let net = Net.create eng in
  let sw = Switch.create ~id:1 ~num_ports:2 () in
  let sw_id = Net.add_switch net sw in
  let a = Net.add_host net ~name:"a" in
  Net.connect net (a.Net.node_id, 0) (sw_id, 1) ~bps:42_000_000 ~delay:0;
  check Alcotest.int "capacity register" 42_000
    (Tpp_asic.State.port_stat (Switch.state sw) ~port:1 Vaddr.Port_stat.Capacity_kbps)

(* --- Topology ---------------------------------------------------------------- *)

let test_chain_end_to_end () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:4 ~hosts_per_switch:1 ~bps:100_000_000
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let src = chain.Topology.hosts.(0).(0) in
  let dst = chain.Topology.hosts.(3).(0) in
  let hops = ref 0 in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with Some tpp -> hops := tpp.Prog.hop | None -> ());
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:64 "PUSH [Switch:SwitchID]\n") in
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "traversed all four switches" 4 !hops

let test_chain_bidirectional () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:100_000_000
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let src = chain.Topology.hosts.(2).(0) in
  let dst = chain.Topology.hosts.(0).(0) in
  let got = ref false in
  dst.Net.receive <- (fun ~now:_ _ -> got := true);
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.bool "reverse direction routed" true !got

let test_dumbbell_pairs () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:10_000_000 ~edge_bps:100_000_000
      ~delay:(Time_ns.us 10) ()
  in
  let net = bell.Topology.d_net in
  let delivered = Array.make 2 false in
  Array.iteri
    (fun i receiver ->
      receiver.Net.receive <- (fun ~now:_ _ -> delivered.(i) <- true))
    bell.Topology.receivers;
  Array.iteri
    (fun i sender ->
      let dst = bell.Topology.receivers.(i) in
      let frame =
        Frame.udp_frame ~src_mac:sender.Net.mac ~dst_mac:dst.Net.mac
          ~src_ip:sender.Net.ip ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2
          ~payload:Bytes.empty ()
      in
      Net.host_send net sender frame)
    bell.Topology.senders;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.bool "pair 0" true delivered.(0);
  check Alcotest.bool "pair 1" true delivered.(1)

let test_diamond_prefers_upper_path () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:100_000_000 ~delay:(Time_ns.us 10) ()
  in
  let upper = Net.switch dia.Topology.m_net dia.Topology.upper in
  let lower = Net.switch dia.Topology.m_net dia.Topology.lower in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send dia.Topology.m_net src frame;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "upper saw it" 1 (Switch.state upper).Tpp_asic.State.packets_seen;
  check Alcotest.int "lower idle" 0 (Switch.state lower).Tpp_asic.State.packets_seen

let test_utilization_updates_started () =
  let eng, net, a, b = two_hosts () in
  Net.start_utilization_updates net ~period:(Time_ns.ms 10) ~until:(Time_ns.ms 100);
  (* 100 packets of 1000B in the first window toward b. *)
  for _ = 1 to 100 do
    let frame =
      Frame.udp_frame ~src_mac:a.Net.mac ~dst_mac:b.Net.mac ~src_ip:a.Net.ip
        ~dst_ip:b.Net.ip ~src_port:1 ~dst_port:2 ~payload:(Bytes.create 954) ()
    in
    Net.host_send net a frame
  done;
  Engine.run eng ~until:(Time_ns.ms 100);
  let sw = List.hd (Net.switches net) |> snd in
  let util =
    Tpp_asic.State.port_stat (Switch.state sw) ~port:1 Vaddr.Port_stat.Rx_util
  in
  (* 100 x 1000B over some 10ms window of a 100 Mb/s link: the windows the
     packets fell into must have shown real utilisation at some point;
     after the traffic stops the register decays to 0. We assert the
     mechanism ran by checking the tx counters instead of racing it. *)
  check Alcotest.bool "util register is a sane ppm" true (util >= 0 && util <= 1_000_000);
  check Alcotest.int "all forwarded" 100
    (Tpp_asic.State.port_stat (Switch.state sw) ~port:1 Vaddr.Port_stat.Tx_pkts)

let suite =
  [
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine same-time fifo" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine rejects the past" `Quick test_engine_no_past_scheduling;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine every" `Quick test_engine_every;
    Alcotest.test_case "engine every rejects past start" `Quick
      test_engine_every_past_start;
    Alcotest.test_case "engine next event time" `Quick test_engine_next_event_time;
    Alcotest.test_case "engine max_int event" `Quick test_engine_max_int_event;
    Alcotest.test_case "engine typed dispatch" `Quick test_engine_typed_dispatch;
    Alcotest.test_case "scheduler and event-mode identity" `Quick
      test_scheduler_and_event_mode_identity;
    Alcotest.test_case "engine until boundary" `Quick
      test_engine_run_until_is_exclusive_of_later_events;
    Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
    Alcotest.test_case "fifo ordering" `Quick test_fifo_no_reordering;
    Alcotest.test_case "wire check" `Quick test_wire_check_exercised;
    Alcotest.test_case "wire check catches corruption (always)" `Quick
      test_wire_check_always_catches_corruption;
    Alcotest.test_case "wire check catches corruption (cached)" `Quick
      test_wire_check_cached_catches_new_shape;
    Alcotest.test_case "wire check modes agree" `Quick test_wire_check_modes_agree;
    Alcotest.test_case "deliver hooks in order" `Quick
      test_deliver_hooks_in_registration_order;
    Alcotest.test_case "tx time integer ceiling" `Quick test_tx_time_integer_ceiling;
    prop_net_lookup_consistent;
    Alcotest.test_case "connect validation" `Quick test_connect_validation;
    Alcotest.test_case "capacity on connect" `Quick test_capacity_set_on_connect;
    Alcotest.test_case "chain end to end" `Quick test_chain_end_to_end;
    Alcotest.test_case "chain bidirectional" `Quick test_chain_bidirectional;
    Alcotest.test_case "dumbbell pairs" `Quick test_dumbbell_pairs;
    Alcotest.test_case "diamond prefers upper" `Quick test_diamond_prefers_upper_path;
    Alcotest.test_case "utilization updates" `Quick test_utilization_updates_started;
  ]
